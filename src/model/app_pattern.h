// Application-level isolation patterns (the second half of the paper's
// §VII future work: "host and application level isolation patterns").
//
// An application-level pattern protects one *service endpoint* — a
// (destination host, service) pair — e.g. a WAF in front of the WEB
// service on a particular server, or query filtering on a DB endpoint.
// Extension semantics (DESIGN.md):
//
//   * at most one application pattern per (host, service) endpoint;
//   * an application pattern contributes its score to the endpoint's flows
//     that carry neither a network-level nor a host-level pattern
//     (precedence: network > host > application);
//   * deployment costs are per endpoint, from the same budget;
//   * a pattern may be restricted to one service (a WAF only makes sense
//     for WEB);
//   * usability is unaffected.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "model/service.h"
#include "util/error.h"
#include "util/fixed.h"

namespace cs::model {

enum class AppPattern : std::int8_t {
  kWaf = 0,            // web application firewall
  kAppHardening = 1,   // generic endpoint hardening / input filtering
};

inline constexpr int kAppPatternCount = 2;

inline constexpr std::array<AppPattern, kAppPatternCount> kAllAppPatterns = {
    AppPattern::kWaf, AppPattern::kAppHardening};

constexpr int app_pattern_index(AppPattern p) { return static_cast<int>(p); }

constexpr std::string_view app_pattern_name(AppPattern p) {
  switch (p) {
    case AppPattern::kWaf:
      return "WAF";
    case AppPattern::kAppHardening:
      return "App Hardening";
  }
  return "?";
}

/// Configuration of the application-level extension; disabled by default.
class AppPatternConfig {
 public:
  /// Stock configuration given a service catalog: a WAF (score 3, $2K per
  /// endpoint) restricted to the service named "WEB" when present, and
  /// generic hardening (score 1, $0.5K) for any service.
  static AppPatternConfig defaults(const ServiceCatalog& services) {
    AppPatternConfig cfg;
    if (const auto web = services.find("WEB"); web.has_value()) {
      cfg.enable(AppPattern::kWaf, util::Fixed::from_int(3),
                 util::Fixed::from_int(2), *web);
    }
    cfg.enable(AppPattern::kAppHardening, util::Fixed::from_int(1),
               util::Fixed::from_double(0.5));
    return cfg;
  }

  /// Enables a pattern. `only_service` restricts it to one service
  /// (kInvalidService = applicable to every service).
  void enable(AppPattern p, util::Fixed score, util::Fixed cost,
              ServiceId only_service = kInvalidService) {
    CS_REQUIRE(score > util::Fixed{} && score <= util::Fixed::from_int(10),
               "app pattern score must lie in (0, 10]");
    CS_REQUIRE(cost >= util::Fixed{}, "app pattern cost must be >= 0");
    if (!is_enabled(p)) enabled_.push_back(p);
    const auto i = static_cast<std::size_t>(app_pattern_index(p));
    score_[i] = score;
    cost_[i] = cost;
    only_service_[i] = only_service;
  }

  const std::vector<AppPattern>& enabled() const { return enabled_; }
  bool any() const { return !enabled_.empty(); }

  bool is_enabled(AppPattern p) const {
    for (const AppPattern e : enabled_)
      if (e == p) return true;
    return false;
  }

  /// True when the pattern may protect endpoints of service `g`.
  bool applicable(AppPattern p, ServiceId g) const {
    if (!is_enabled(p)) return false;
    const ServiceId only =
        only_service_[static_cast<std::size_t>(app_pattern_index(p))];
    return only == kInvalidService || only == g;
  }

  /// Service the pattern is restricted to (kInvalidService = any).
  ServiceId only_service(AppPattern p) const {
    return only_service_[static_cast<std::size_t>(app_pattern_index(p))];
  }

  util::Fixed score(AppPattern p) const {
    return score_[static_cast<std::size_t>(app_pattern_index(p))];
  }
  util::Fixed cost(AppPattern p) const {
    return cost_[static_cast<std::size_t>(app_pattern_index(p))];
  }

 private:
  std::vector<AppPattern> enabled_;
  std::array<util::Fixed, kAppPatternCount> score_{};
  std::array<util::Fixed, kAppPatternCount> cost_{};
  std::array<ServiceId, kAppPatternCount> only_service_{kInvalidService,
                                                        kInvalidService};
};

}  // namespace cs::model
