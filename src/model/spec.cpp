#include "model/spec.h"

#include <algorithm>
#include <string>

#include "util/error.h"

namespace cs::model {

void ProblemSpec::finalize() {
  if (ranks.size() != flows.size()) ranks = FlowRanks::uniform(flows);
}

void ProblemSpec::validate() const {
  network.validate();
  sliders.validate();
  CS_REQUIRE(!flows.empty(), "spec has no flows to decide over");
  CS_REQUIRE(ranks.size() == flows.size(),
             "spec ranks not finalized (call finalize())");
  CS_REQUIRE(!isolation.enabled().empty(), "no isolation patterns enabled");
  CS_REQUIRE(alpha >= util::Fixed{} && alpha <= util::Fixed::from_int(1),
             "alpha must lie in [0, 1]");

  for (const Flow& f : flows.all()) {
    CS_REQUIRE(f.src >= 0 &&
                   f.src < static_cast<topology::NodeId>(network.node_count()),
               "flow source out of range");
    CS_REQUIRE(f.dst >= 0 &&
                   f.dst < static_cast<topology::NodeId>(network.node_count()),
               "flow destination out of range");
    CS_REQUIRE(network.is_host(f.src) && network.is_host(f.dst),
               "flow endpoints must be hosts");
    CS_REQUIRE(f.service >= 0 &&
                   f.service < static_cast<ServiceId>(services.size()),
               "flow references unknown service");
  }
  for (const FlowId id : connectivity.sorted()) {
    CS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < flows.size(),
               "connectivity requirement references unknown flow");
  }
  for (const HostIsolationRequirement& req : host_requirements) {
    CS_REQUIRE(req.host >= 0 &&
                   req.host <
                       static_cast<topology::NodeId>(network.node_count()) &&
                   network.is_host(req.host),
               "host isolation requirement targets a non-host node");
    CS_REQUIRE(req.min_isolation >= util::Fixed{} &&
                   req.min_isolation <= kSliderMax,
               "host isolation requirement out of [0, 10]");
  }
  for (const UserConstraint& uc : user_constraints) {
    if (const auto* req = std::get_if<RequirePatternForFlow>(&uc)) {
      CS_REQUIRE(flows.find(req->flow).has_value(),
                 "RequirePatternForFlow references unknown flow");
      CS_REQUIRE(isolation.is_enabled(req->pattern),
                 "RequirePatternForFlow uses a disabled pattern");
      // A pinned access-deny on a required flow is contradictory by IIC2;
      // catch it here with a message instead of an opaque UNSAT.
      if (denies_flow(req->pattern)) {
        const FlowId id = *flows.find(req->flow);
        CS_REQUIRE(!connectivity.required(id),
                   "user constraint denies a connectivity requirement");
      }
    } else if (const auto* deny = std::get_if<DenyOneOf>(&uc)) {
      CS_REQUIRE(flows.find(deny->open_flow).has_value(),
                 "DenyOneOf references unknown open flow");
      CS_REQUIRE(flows.find(deny->guard_flow).has_value(),
                 "DenyOneOf references unknown guard flow");
    } else if (const auto* fps = std::get_if<ForbidPatternForService>(&uc)) {
      CS_REQUIRE(fps->service >= 0 &&
                     fps->service < static_cast<ServiceId>(services.size()),
                 "ForbidPatternForService references unknown service");
    } else if (const auto* fpf = std::get_if<ForbidPatternForFlow>(&uc)) {
      CS_REQUIRE(flows.find(fpf->flow).has_value(),
                 "ForbidPatternForFlow references unknown flow");
    }
  }
}

void add_standard_services(ServiceCatalog& catalog) {
  catalog.add("WEB", 6, 80);
  catalog.add("SSH", 6, 22);
  catalog.add("DNS", 17, 53);
  catalog.add("SMTP", 6, 25);
  catalog.add("DB", 6, 3306);
  catalog.add("FTP", 6, 21);
}

void populate_random_workload(ProblemSpec& spec, const WorkloadConfig& config,
                              util::Rng& rng) {
  CS_REQUIRE(config.service_count >= 1, "workload: no services");
  CS_REQUIRE(config.min_services_per_pair >= 1 &&
                 config.min_services_per_pair <= config.max_services_per_pair,
             "workload: bad services-per-pair range");
  CS_REQUIRE(config.max_services_per_pair <= config.service_count,
             "workload: more flows per pair than services");
  CS_REQUIRE(config.pair_density > 0 && config.pair_density <= 1,
             "workload: pair density must lie in (0, 1]");
  CS_REQUIRE(config.cr_fraction >= 0 && config.cr_fraction <= 1,
             "workload: cr fraction must lie in [0, 1]");

  for (int s = 0; s < config.service_count; ++s)
    spec.services.add("g" + std::to_string(s + 1), 6, 1024 + s);

  // Flows: for each ordered host pair, draw 1..max services (paper §V:
  // "randomly choose 1-3 services between a pair of hosts").
  std::vector<ServiceId> palette(
      static_cast<std::size_t>(config.service_count));
  for (int s = 0; s < config.service_count; ++s)
    palette[static_cast<std::size_t>(s)] = s;

  const auto& hosts = spec.network.hosts();
  for (const topology::NodeId i : hosts) {
    for (const topology::NodeId j : hosts) {
      if (i == j) continue;
      if (!rng.chance(config.pair_density)) continue;
      const auto n = static_cast<std::size_t>(
          rng.uniform(config.min_services_per_pair,
                      config.max_services_per_pair));
      rng.shuffle(palette);
      for (std::size_t s = 0; s < n; ++s)
        spec.flows.add(Flow{i, j, palette[s]});
    }
  }
  CS_REQUIRE(!spec.flows.empty(),
             "workload produced no flows (density too low?)");

  // Connectivity requirements: a uniform sample of cr_fraction of flows.
  const auto target = static_cast<std::size_t>(
      config.cr_fraction * static_cast<double>(spec.flows.size()) + 0.5);
  std::vector<FlowId> ids(spec.flows.size());
  for (std::size_t f = 0; f < ids.size(); ++f)
    ids[f] = static_cast<FlowId>(f);
  rng.shuffle(ids);
  for (std::size_t f = 0; f < target && f < ids.size(); ++f)
    spec.connectivity.add(ids[f]);

  spec.finalize();
}

}  // namespace cs::model
