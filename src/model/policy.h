// User-defined isolation policy constraints (paper §III-D, UIC).
//
// UICs let an organization carve requirements into the synthesis beyond the
// three sliders. The paper's three exemplars map onto:
//   UIC1 "no IPSec for SSH"        -> ForbidPatternForService
//   UIC2 "i may reach ĵ only if the Internet cannot reach i"
//                                  -> DenyOneOf (a clause over two denies)
//   UIC3 "no trusted comm for WEB" -> ForbidPatternForService
// plus pinning constraints used by administrators to lock decisions in/out.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "model/flow.h"
#include "model/isolation.h"
#include "model/service.h"

namespace cs::model {

/// Forbids pattern k on every flow of a service (y^k_{i,j}(g) = false ∀i,j).
struct ForbidPatternForService {
  ServiceId service = kInvalidService;
  IsolationPattern pattern = IsolationPattern::kAccessDeny;

  bool operator==(const ForbidPatternForService&) const = default;
};

/// Forbids pattern k on one specific flow.
struct ForbidPatternForFlow {
  Flow flow;
  IsolationPattern pattern = IsolationPattern::kAccessDeny;

  bool operator==(const ForbidPatternForFlow&) const = default;
};

/// Forces pattern k on one specific flow (y^k = true).
struct RequirePatternForFlow {
  Flow flow;
  IsolationPattern pattern = IsolationPattern::kAccessDeny;

  bool operator==(const RequirePatternForFlow&) const = default;
};

/// "`open_flow` may be left open only if `guard_flow` is denied":
/// y^1(open_flow) ∨ y^1(guard_flow). The paper's UIC2 instantiates this
/// with guard_flow = (Internet → i).
struct DenyOneOf {
  Flow open_flow;
  Flow guard_flow;

  bool operator==(const DenyOneOf&) const = default;
};

using UserConstraint = std::variant<ForbidPatternForService,
                                    ForbidPatternForFlow,
                                    RequirePatternForFlow, DenyOneOf>;

/// Human-readable rendering for reports and unsat explanations.
std::string describe(const UserConstraint& constraint,
                     const ServiceCatalog& services,
                     const topology::Network& net);

}  // namespace cs::model
