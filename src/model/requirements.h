// Connectivity requirements and flow ranks (paper §III-B).
//
// A connectivity requirement CR_r marks a flow as business-essential: the
// synthesized design must not deny it (hard clause; see IIC2). Flow ranks
// a_{i,j}(g) weight each flow's contribution to the usability metric and are
// derived from a partial order over services when the administrator gives
// one (all flows rank equally otherwise).
#pragma once

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "model/flow.h"
#include "model/order.h"
#include "util/fixed.h"

namespace cs::model {

class ConnectivityRequirements {
 public:
  /// Marks `flow` as required-to-communicate.
  void add(FlowId flow) { required_.insert(flow); }

  bool required(FlowId flow) const { return required_.contains(flow); }

  std::size_t size() const { return required_.size(); }

  /// Sorted list of required flows (deterministic iteration for encoding).
  std::vector<FlowId> sorted() const {
    std::vector<FlowId> out(required_.begin(), required_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_set<FlowId> required_;
};

/// Per-flow demand ranks a_{i,j}(g), normalized into (0, 1].
class FlowRanks {
 public:
  /// All flows rank 1 (the paper's default when no demand is specified).
  static FlowRanks uniform(const FlowSet& flows);

  /// Ranks derived from a partial order over services: each flow inherits
  /// its service's completed score, normalized into (0, 1].
  static FlowRanks from_service_order(
      const FlowSet& flows, std::size_t service_count,
      const std::vector<OrderConstraint>& order_over_services);

  /// Overrides one flow's rank (must lie in (0, 1]).
  void set(FlowId flow, util::Fixed rank);

  util::Fixed rank(FlowId flow) const {
    return ranks_[static_cast<std::size_t>(flow)];
  }

  /// Σ_f a_f — the usability normalization denominator.
  util::Fixed total() const;

  std::size_t size() const { return ranks_.size(); }

 private:
  std::vector<util::Fixed> ranks_;
};

}  // namespace cs::model
