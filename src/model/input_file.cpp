#include "model/input_file.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace cs::model {

namespace {

/// Comment-skipping number tokenizer over the whole stream.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) {
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::string trimmed = util::trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      for (const std::string& tok : util::split_ws(trimmed)) {
        tokens_.push_back(tok);
        lines_.push_back(line_no);
      }
    }
  }

  long long next_int(std::string_view what) {
    CS_REQUIRE(pos_ < tokens_.size(),
               "unexpected end of input while reading " + std::string(what));
    const std::string& tok = tokens_[pos_];
    const int line = lines_[pos_];
    ++pos_;
    return util::parse_int(tok,
                           std::string(what) + " (line " +
                               std::to_string(line) + ")");
  }

  double next_double(std::string_view what) {
    CS_REQUIRE(pos_ < tokens_.size(),
               "unexpected end of input while reading " + std::string(what));
    const std::string& tok = tokens_[pos_];
    const int line = lines_[pos_];
    ++pos_;
    return util::parse_double(tok,
                              std::string(what) + " (line " +
                                  std::to_string(line) + ")");
  }

  bool exhausted() const { return pos_ >= tokens_.size(); }

 private:
  std::vector<std::string> tokens_;
  std::vector<int> lines_;
  std::size_t pos_ = 0;
};

IsolationPattern pattern_from_paper_id(long long id) {
  CS_REQUIRE(id >= 1 && id <= kPatternCount,
             "isolation pattern id out of range: " + std::to_string(id));
  return static_cast<IsolationPattern>(id - 1);
}

OrderRelation relation_from_code(long long code) {
  switch (code) {
    case 1:
      return OrderRelation::kEqual;
    case 2:
      return OrderRelation::kGreater;
    case 3:
      return OrderRelation::kGreaterEqual;
    default:
      throw util::SpecError("comparison code must be 1 (=), 2 (>) or 3 (>=)");
  }
}

}  // namespace

ProblemSpec parse_input(std::istream& in) {
  TokenReader r(in);
  ProblemSpec spec;

  // 1-2. Enabled isolation patterns.
  const long long pattern_count = r.next_int("number of isolation patterns");
  CS_REQUIRE(pattern_count >= 1 && pattern_count <= kPatternCount,
             "number of isolation patterns out of range");
  std::vector<IsolationPattern> enabled;
  std::vector<std::size_t> paper_to_enabled(kPatternCount + 1, SIZE_MAX);
  for (long long p = 0; p < pattern_count; ++p) {
    const long long id = r.next_int("isolation pattern id");
    const IsolationPattern pattern = pattern_from_paper_id(id);
    CS_REQUIRE(paper_to_enabled[static_cast<std::size_t>(id)] == SIZE_MAX,
               "pattern listed twice");
    paper_to_enabled[static_cast<std::size_t>(id)] = enabled.size();
    enabled.push_back(pattern);
  }

  // 3. Partial order over the enabled patterns.
  const long long order_rows = r.next_int("number of partial-order rows");
  CS_REQUIRE(order_rows >= 0, "negative partial-order count");
  std::vector<OrderConstraint> order;
  for (long long row = 0; row < order_rows; ++row) {
    const long long a = r.next_int("partial-order pattern a");
    const long long b = r.next_int("partial-order pattern b");
    const long long cmp = r.next_int("partial-order comparison");
    (void)pattern_from_paper_id(a);
    (void)pattern_from_paper_id(b);
    const std::size_t ia = paper_to_enabled[static_cast<std::size_t>(a)];
    const std::size_t ib = paper_to_enabled[static_cast<std::size_t>(b)];
    CS_REQUIRE(ia != SIZE_MAX && ib != SIZE_MAX,
               "partial order references a disabled pattern");
    order.push_back(OrderConstraint{ia, ib, relation_from_code(cmp)});
  }
  spec.isolation = IsolationConfig::from_partial_order(enabled, order);

  // 4. Device costs.
  for (const DeviceType d : kAllDevices) {
    const double cost = r.next_double("device cost");
    CS_REQUIRE(cost >= 0, "device cost must be non-negative");
    spec.device_costs.set(d, util::Fixed::from_double(cost));
  }

  // 5. Hosts and routers.
  const long long hosts = r.next_int("number of hosts");
  const long long routers = r.next_int("number of routers");
  CS_REQUIRE(hosts >= 2, "need at least two hosts");
  CS_REQUIRE(routers >= 0, "negative router count");
  std::vector<topology::NodeId> node_of(
      static_cast<std::size_t>(hosts + routers) + 1, topology::kInvalidNode);
  for (long long h = 1; h <= hosts; ++h)
    node_of[static_cast<std::size_t>(h)] =
        spec.network.add_host("h" + std::to_string(h));
  for (long long rt = 1; rt <= routers; ++rt)
    node_of[static_cast<std::size_t>(hosts + rt)] =
        spec.network.add_router("r" + std::to_string(rt));

  // 6. Links.
  const long long links = r.next_int("number of links");
  CS_REQUIRE(links >= 1, "need at least one link");
  for (long long l = 0; l < links; ++l) {
    const long long a = r.next_int("link endpoint a");
    const long long b = r.next_int("link endpoint b");
    CS_REQUIRE(a >= 1 && a <= hosts + routers, "link endpoint a out of range");
    CS_REQUIRE(b >= 1 && b <= hosts + routers, "link endpoint b out of range");
    spec.network.add_link(node_of[static_cast<std::size_t>(a)],
                          node_of[static_cast<std::size_t>(b)]);
  }

  // The Table IV example assumes one service between each host pair.
  const ServiceId svc = spec.services.add("svc");
  for (long long i = 1; i <= hosts; ++i)
    for (long long j = 1; j <= hosts; ++j)
      if (i != j)
        spec.flows.add(Flow{node_of[static_cast<std::size_t>(i)],
                            node_of[static_cast<std::size_t>(j)], svc});

  // 7. Connectivity requirements: one row per source host, 0-terminated.
  for (long long i = 1; i <= hosts; ++i) {
    while (true) {
      const long long j = r.next_int("connectivity destination");
      if (j == 0) break;
      CS_REQUIRE(j >= 1 && j <= hosts,
                 "connectivity destination out of range");
      CS_REQUIRE(j != i, "connectivity requirement to self");
      const auto id = spec.flows.find(
          Flow{node_of[static_cast<std::size_t>(i)],
               node_of[static_cast<std::size_t>(j)], svc});
      CS_ENSURE(id.has_value(), "flow table incomplete");
      spec.connectivity.add(*id);
    }
  }

  // 8. Sliders.
  spec.sliders.isolation =
      util::Fixed::from_double(r.next_double("isolation slider"));
  spec.sliders.usability =
      util::Fixed::from_double(r.next_double("usability slider"));
  spec.sliders.budget =
      util::Fixed::from_double(r.next_double("budget slider"));

  CS_REQUIRE(r.exhausted(), "trailing tokens after the sliders section");

  spec.finalize();
  spec.validate();
  return spec;
}

ProblemSpec parse_input_file(const std::string& path) {
  std::ifstream in(path);
  CS_REQUIRE(static_cast<bool>(in), "cannot open input file '" + path + "'");
  return parse_input(in);
}

std::string serialize_input(const ProblemSpec& spec) {
  CS_REQUIRE(spec.services.size() == 1,
             "serialize_input supports single-service specs only");
  std::ostringstream out;

  out << "# Number of Security Devices (enabled isolation patterns)\n";
  out << spec.isolation.enabled().size() << "\n";
  out << "# Pattern ids: 1 deny, 2 trusted, 3 inspection, 4 proxy, "
         "5 proxy+trusted\n";
  for (std::size_t i = 0; i < spec.isolation.enabled().size(); ++i)
    out << (i ? " " : "") << paper_id(spec.isolation.enabled()[i]);
  out << "\n";

  // Scores are already completed; emit them as an explicit total order via
  // pairwise '>'/'=' rows over adjacent patterns sorted by score.
  std::vector<IsolationPattern> sorted = spec.isolation.enabled();
  std::sort(sorted.begin(), sorted.end(),
            [&](IsolationPattern a, IsolationPattern b) {
              return spec.isolation.score(a) > spec.isolation.score(b);
            });
  out << "# Isolation Specifications (partial orders)\n";
  out << (sorted.size() - 1) << "\n";
  out << "# Pattern, Pattern, Comparison (1 '=', 2 '>', 3 '>=')\n";
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    const bool equal = spec.isolation.score(sorted[i]) ==
                       spec.isolation.score(sorted[i + 1]);
    out << paper_id(sorted[i]) << " " << paper_id(sorted[i + 1]) << " "
        << (equal ? 1 : 2) << "\n";
  }

  out << "# Cost of each security device (Firewall IPSec IDS Proxy, $K)\n";
  for (const DeviceType d : kAllDevices) {
    out << spec.device_costs.cost(d).to_string()
        << (d == kAllDevices.back() ? "\n" : " ");
  }

  const auto& net = spec.network;
  out << "# Number of Hosts and Routers\n";
  out << net.host_count() << " " << net.router_count() << "\n";

  // Node numbering: hosts 1..H in insertion order, routers H+1..H+R.
  std::vector<long long> number_of(net.node_count(), 0);
  long long next = 1;
  for (const topology::NodeId h : net.hosts())
    number_of[static_cast<std::size_t>(h)] = next++;
  for (const topology::NodeId rt : net.routers())
    number_of[static_cast<std::size_t>(rt)] = next++;

  out << "# Links\n" << net.link_count() << "\n";
  for (const topology::Link& l : net.links())
    out << number_of[static_cast<std::size_t>(l.a)] << " "
        << number_of[static_cast<std::size_t>(l.b)] << "\n";

  out << "# Connectivity Requirements (each row for a host, ends with 0)\n";
  for (const topology::NodeId i : net.hosts()) {
    for (const topology::NodeId j : net.hosts()) {
      if (i == j) continue;
      const auto id = spec.flows.find(Flow{i, j, 0});
      if (id.has_value() && spec.connectivity.required(*id))
        out << number_of[static_cast<std::size_t>(j)] << " ";
    }
    out << "0\n";
  }

  out << "# Sliders Values (Isolation 0-10, Usability 0-10, Cost in $K)\n";
  out << spec.sliders.isolation.to_string() << " "
      << spec.sliders.usability.to_string() << " "
      << spec.sliders.budget.to_string() << "\n";
  return out.str();
}

}  // namespace cs::model
