#include "model/policy.h"

namespace cs::model {

namespace {

std::string flow_text(const Flow& f, const ServiceCatalog& services,
                      const topology::Network& net) {
  return net.node(f.src).name + "->" + net.node(f.dst).name + ":" +
         services.service(f.service).name;
}

}  // namespace

std::string describe(const UserConstraint& constraint,
                     const ServiceCatalog& services,
                     const topology::Network& net) {
  struct Visitor {
    const ServiceCatalog& services;
    const topology::Network& net;

    std::string operator()(const ForbidPatternForService& c) const {
      return "forbid '" + std::string(pattern_name(c.pattern)) +
             "' for service " + services.service(c.service).name;
    }
    std::string operator()(const ForbidPatternForFlow& c) const {
      return "forbid '" + std::string(pattern_name(c.pattern)) +
             "' on flow " + flow_text(c.flow, services, net);
    }
    std::string operator()(const RequirePatternForFlow& c) const {
      return "require '" + std::string(pattern_name(c.pattern)) +
             "' on flow " + flow_text(c.flow, services, net);
    }
    std::string operator()(const DenyOneOf& c) const {
      return "deny " + flow_text(c.open_flow, services, net) + " or deny " +
             flow_text(c.guard_flow, services, net);
    }
  };
  return std::visit(Visitor{services, net}, constraint);
}

}  // namespace cs::model
