#include "model/requirements.h"

#include <algorithm>

#include "util/error.h"

namespace cs::model {

FlowRanks FlowRanks::uniform(const FlowSet& flows) {
  FlowRanks r;
  r.ranks_.assign(flows.size(), util::Fixed::from_int(1));
  return r;
}

FlowRanks FlowRanks::from_service_order(
    const FlowSet& flows, std::size_t service_count,
    const std::vector<OrderConstraint>& order_over_services) {
  CS_REQUIRE(service_count > 0, "FlowRanks: no services");
  const std::vector<int> raw =
      complete_order(service_count, order_over_services);
  const int top = *std::max_element(raw.begin(), raw.end());
  FlowRanks r;
  r.ranks_.reserve(flows.size());
  for (const Flow& f : flows.all()) {
    CS_REQUIRE(static_cast<std::size_t>(f.service) < service_count,
               "flow references service outside the ordered set");
    r.ranks_.push_back(util::Fixed::from_raw(
        util::Fixed::kScale * raw[static_cast<std::size_t>(f.service)] /
        top));
  }
  return r;
}

void FlowRanks::set(FlowId flow, util::Fixed rank) {
  CS_REQUIRE(rank > util::Fixed{} && rank <= util::Fixed::from_int(1),
             "flow rank must lie in (0, 1]");
  CS_ENSURE(flow >= 0 && static_cast<std::size_t>(flow) < ranks_.size(),
            "FlowRanks::set: bad flow id");
  ranks_[static_cast<std::size_t>(flow)] = rank;
}

util::Fixed FlowRanks::total() const {
  util::Fixed sum{};
  for (const util::Fixed r : ranks_) sum += r;
  return sum;
}

}  // namespace cs::model
