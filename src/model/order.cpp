#include "model/order.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace cs::model {

namespace {

/// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

struct Edge {
  std::size_t to;
  int weight;  // 1 for strict (>), 0 for weak (>=)
};

}  // namespace

std::vector<int> complete_order(
    std::size_t count, const std::vector<OrderConstraint>& constraints) {
  CS_REQUIRE(count > 0, "complete_order: no items");
  for (const OrderConstraint& c : constraints) {
    CS_REQUIRE(c.a < count && c.b < count,
               "complete_order: constraint references unknown item");
  }

  // Phase 1: merge explicit equalities.
  UnionFind uf(count);
  for (const OrderConstraint& c : constraints)
    if (c.relation == OrderRelation::kEqual) uf.merge(c.a, c.b);

  // Phase 2: collapse weak/strict cycles. We iterate: find strongly
  // connected components over the remaining edges; an SCC containing a
  // strict edge is contradictory, an SCC of weak edges forces equality.
  // Because count is tiny (patterns/services), a simple O(n^3)
  // reachability closure suffices and is easy to audit.
  const auto build_edges = [&](std::vector<std::vector<Edge>>& adj) {
    adj.assign(count, {});
    for (const OrderConstraint& c : constraints) {
      if (c.relation == OrderRelation::kEqual) continue;
      const std::size_t a = uf.find(c.a);
      const std::size_t b = uf.find(c.b);
      const int w = c.relation == OrderRelation::kGreater ? 1 : 0;
      if (a == b) {
        CS_REQUIRE(w == 0, "contradictory order: item strictly above itself");
        continue;
      }
      adj[a].push_back(Edge{b, w});  // a is above b
    }
  };

  std::vector<std::vector<Edge>> adj;
  bool merged = true;
  while (merged) {
    merged = false;
    build_edges(adj);
    // reach[i][j] = max edge weight along some path i -> j (-1 unreachable).
    std::vector<std::vector<int>> reach(count, std::vector<int>(count, -1));
    for (std::size_t i = 0; i < count; ++i)
      for (const Edge& e : adj[i])
        reach[i][e.to] = std::max(reach[i][e.to], e.weight);
    for (std::size_t k = 0; k < count; ++k)
      for (std::size_t i = 0; i < count; ++i)
        for (std::size_t j = 0; j < count; ++j)
          if (reach[i][k] >= 0 && reach[k][j] >= 0)
            reach[i][j] =
                std::max(reach[i][j], std::max(reach[i][k], reach[k][j]));
    for (std::size_t i = 0; i < count && !merged; ++i) {
      for (std::size_t j = 0; j < count && !merged; ++j) {
        if (i == j || reach[i][j] < 0 || reach[j][i] < 0) continue;
        CS_REQUIRE(reach[i][j] == 0 && reach[j][i] == 0,
                   "contradictory order: strict cycle");
        if (uf.find(i) != uf.find(j)) {
          uf.merge(i, j);
          merged = true;  // rebuild with the merged classes
        }
      }
    }
  }

  // Phase 3: longest-path layering on the (now acyclic) class DAG.
  build_edges(adj);
  std::vector<int> score(count, -1);
  // Recursive longest path with memoization over representatives.
  const auto dfs = [&](auto&& self, std::size_t rep) -> int {
    if (score[rep] >= 0) return score[rep];
    int best = 1;  // bottom score
    for (const Edge& e : adj[rep])
      best = std::max(best, self(self, e.to) + e.weight);
    score[rep] = best;
    return best;
  };
  std::vector<int> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = dfs(dfs, uf.find(i));
  return out;
}

std::vector<util::Fixed> normalize_scores(const std::vector<int>& scores,
                                          util::Fixed lo, util::Fixed hi) {
  CS_REQUIRE(!scores.empty(), "normalize_scores: no scores");
  CS_REQUIRE(lo <= hi, "normalize_scores: empty range");
  const auto [mn_it, mx_it] = std::minmax_element(scores.begin(), scores.end());
  const int mn = *mn_it;
  const int mx = *mx_it;
  std::vector<util::Fixed> out(scores.size());
  if (mn == mx) {
    std::fill(out.begin(), out.end(), hi);
    return out;
  }
  const util::Fixed span = hi - lo;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    // lo + span * (s - mn) / (mx - mn), computed in raw units with one
    // rounding division so ties stay ties.
    const std::int64_t num = span.raw() * (scores[i] - mn);
    const std::int64_t den = mx - mn;
    out[i] = lo + util::Fixed::from_raw((num + den / 2) / den);
  }
  return out;
}

}  // namespace cs::model
