// Text input-file format (paper §IV, Table IV).
//
// ConfigSynth reads the problem from a sectioned text file; lines beginning
// with '#' are comments, remaining tokens are whitespace-separated numbers.
// Sections appear in this fixed order (matching the paper's Table IV):
//
//   1. number of enabled isolation patterns P (their paper ids follow:
//      1 deny, 2 trusted, 3 inspection, 4 proxy, 5 proxy+trusted)
//   2. P pattern ids
//   3. number of partial-order rows, then rows "a b cmp" over pattern ids
//      with cmp: 1 '=', 2 '>', 3 '>='
//   4. cost of each security device: Firewall IPSec IDS Proxy (in $K)
//   5. number of hosts H and routers R (nodes are numbered 1..H for hosts,
//      H+1..H+R for routers)
//   6. number of links, then rows "a b" of node numbers
//   7. connectivity requirements: one row per source host, listing
//      destination host numbers, terminated by 0 (paper: "each row for a
//      host, which ends with 0"); a bare 0 row means none
//   8. slider values: isolation (0-10), usability (0-10), budget ($K)
//
// The format covers the paper's single-service example; the richer
// multi-service specs used elsewhere in the library are built in code.
#pragma once

#include <iosfwd>
#include <string>

#include "model/spec.h"

namespace cs::model {

/// Parses the Table IV format; throws SpecError with line context on
/// malformed input. The returned spec is finalized and validated.
ProblemSpec parse_input(std::istream& in);
ProblemSpec parse_input_file(const std::string& path);

/// Serializes a single-service spec back into the Table IV format.
/// Requires: exactly one service and all flows using it.
std::string serialize_input(const ProblemSpec& spec);

}  // namespace cs::model
