// Typed spec deltas — the cs-delta-v1 changefeed (docs/DELTAS.md).
//
// Real deployments mutate: hosts join and leave, links fail and come
// back, flows and policy constraints are added, thresholds get retuned.
// A `SpecDelta` is an ordered list of such operations applied
// *transactionally* to a finalized ProblemSpec: either every op resolves
// and the post-delta spec validates, or `apply_delta` throws SpecError
// and the input spec is untouched.
//
// Ops reference nodes and services by *name*, never by id, so a delta
// rendered against one spec replays against any spec with the same
// naming — ids are an artifact of construction order and removals
// renumber them. The canonical line serialization (`render_delta` /
// `parse_delta`) is space-free so deltas travel as one token of a
// cs-req-v1 request line (`delta:` spec-ref, docs/PROTOCOL.md) and
// through request files:
//
//   delta := op (";" op)*
//   op    := "add-host" "," name "," router ["," group]
//          | "remove-host" "," name
//          | "fail-link" "," name "," name
//          | "restore-link" "," name "," name
//          | "add-flow" "," src "," dst "," service ["," "cr"]
//          | "remove-flow" "," src "," dst "," service
//          | "add-uic" "," uic
//          | "remove-uic" "," uic
//          | "retune" ("," ("iso"|"usab"|"budget") "=" value)+
//   uic   := "forbid-service" "," service "," pattern
//          | "forbid-flow" "," src "," dst "," service "," pattern
//          | "require-flow" "," src "," dst "," service "," pattern
//          | "deny-one-of" "," src "," dst "," service
//                          "," src "," dst "," service
//
// `parse_delta(render_delta(d)) == d` for every valid delta.
//
// Removal semantics cascade (documented in docs/DELTAS.md): removing a
// host drops its flows, their connectivity requirements, any UIC
// referencing those flows, and the host's isolation requirement;
// removing a flow drops its CR and referencing UICs. `fail-link` must
// not disconnect the network (spec validation rejects the delta).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/spec.h"
#include "util/fixed.h"

namespace cs::model {

enum class DeltaOpKind {
  kAddHost,      // new leaf host attached to an existing router
  kRemoveHost,   // cascade: flows, CRs, UICs, host requirement
  kFailLink,     // remove one link (must not disconnect)
  kRestoreLink,  // add one link between existing nodes
  kAddFlow,      // new (src, dst, service) flow, optionally a CR
  kRemoveFlow,   // cascade: CR, referencing UICs
  kAddUic,       // append one user constraint (set semantics: no dupes)
  kRemoveUic,    // erase one user constraint (must exist)
  kRetune,       // overwrite any subset of the three sliders
};

std::string_view delta_op_name(DeltaOpKind kind);

/// One delta operation. Which fields are meaningful depends on `kind`;
/// `parse_delta` and `apply_delta` enforce the grammar arity, so two ops
/// compare equal iff their canonical renderings do.
struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kRetune;

  std::string a;        // add/remove-host: host name; links: endpoint;
                        // flows: source host name
  std::string b;        // add-host: router; links: endpoint; flows: dst
  std::string service;  // flow ops: service name
  bool connectivity_required = false;  // add-flow: also mark as CR
  int group_size = 1;                  // add-host: logical group size

  /// UIC ops: the uic production's comma-joined tokens, first the form
  /// name (`forbid-service`, `forbid-flow`, `require-flow`,
  /// `deny-one-of`), then its arguments in grammar order.
  std::vector<std::string> uic;

  /// Retune: absent knobs keep their current value.
  std::optional<util::Fixed> isolation;
  std::optional<util::Fixed> usability;
  std::optional<util::Fixed> budget;

  bool operator==(const DeltaOp&) const = default;
};

/// An ordered, transactional batch of operations.
struct SpecDelta {
  std::vector<DeltaOp> ops;

  bool operator==(const SpecDelta&) const = default;
};

/// Canonical cs-delta-v1 text (space-free, one line). Throws SpecError
/// if an op is malformed (bad arity, a name containing a delimiter).
std::string render_delta(const SpecDelta& delta);

/// Parses canonical text back into ops. Grammar errors throw SpecError;
/// name resolution is deferred to `apply_delta`.
SpecDelta parse_delta(std::string_view text);

/// Applies `delta` to a copy of `spec` and returns the finalized,
/// validated result. Transactional: any failure (unknown name, duplicate
/// host, disconnecting link failure, missing UIC, invalid slider) throws
/// SpecError and `spec` is unchanged.
ProblemSpec apply_delta(const ProblemSpec& spec, const SpecDelta& delta);

/// True when no op changes the route universe of pre-existing node
/// pairs: link failures/restores and host removals can reroute existing
/// flows, so they are NOT route-preserving; host additions only create
/// routes that terminate at the new leaf. The incremental synthesizer
/// uses this to decide whether a cached route table can be transplanted
/// (see Synthesizer::apply_delta).
bool route_preserving(const SpecDelta& delta);

/// Wire token for IsolationPattern in uic productions (`access-deny`,
/// `trusted-comm`, `payload-inspection`, `proxy`, `proxy-trusted`).
std::string_view pattern_token(IsolationPattern pattern);
IsolationPattern pattern_from_token(std::string_view token);

}  // namespace cs::model
