// The complete synthesis problem specification.
//
// `ProblemSpec` bundles everything §III of the paper takes as input: the
// topology, the candidate flows, the isolation configuration (patterns,
// scores, usability impacts, tunnel margin), device costs, connectivity
// requirements, user-defined constraints, flow ranks, the three sliders and
// the incoming-traffic weight α. The encoder (synth/encoder.h) consumes a
// validated spec; the workload generator below fills one randomly for the
// evaluation experiments.
#pragma once

#include <vector>

#include "model/app_pattern.h"
#include "model/device.h"
#include "model/flow.h"
#include "model/host_pattern.h"
#include "model/isolation.h"
#include "model/policy.h"
#include "model/requirements.h"
#include "model/risk.h"
#include "model/service.h"
#include "model/thresholds.h"
#include "topology/network.h"
#include "topology/routes.h"
#include "util/fixed.h"
#include "util/rng.h"

namespace cs::model {

struct ProblemSpec {
  topology::Network network;
  ServiceCatalog services;
  FlowSet flows;
  IsolationConfig isolation = IsolationConfig::defaults();
  /// Host-level isolation patterns (§VII extension); disabled by default.
  HostPatternConfig host_patterns;
  /// Application-level isolation patterns (§VII extension); disabled by
  /// default.
  AppPatternConfig app_patterns;
  DeviceCosts device_costs = DeviceCosts::defaults();
  ConnectivityRequirements connectivity;
  std::vector<UserConstraint> user_constraints;
  /// Risk-based minimum-isolation constraints per host (RMC, paper §V).
  std::vector<HostIsolationRequirement> host_requirements;
  FlowRanks ranks;  // empty => finalize() installs uniform ranks
  Sliders sliders;
  /// Weight α of incoming traffic in per-host isolation (paper eq. 2);
  /// incoming dominates, per the paper's discussion.
  util::Fixed alpha = util::Fixed::from_double(0.7);
  topology::RouteOptions route_options;

  /// Installs defaults that depend on the populated flows (uniform ranks).
  void finalize();

  /// Throws SpecError when internally inconsistent (bad flow endpoints,
  /// rank/flow size mismatch, denied CRs pinned by UICs, slider ranges...).
  void validate() const;
};

/// Registers the example service catalog used by examples and tests:
/// WEB(80), SSH(22), DNS(53), SMTP(25), DB(3306), FTP(21).
void add_standard_services(ServiceCatalog& catalog);

/// Random-workload knobs matching the paper's evaluation methodology (§V):
/// 1–3 services per host pair, connectivity requirements as a percentage of
/// all flows.
struct WorkloadConfig {
  /// Size of the service catalog.
  int service_count = 3;
  /// Flows per *ordered* host pair, drawn uniformly from this range.
  int min_services_per_pair = 1;
  int max_services_per_pair = 3;
  /// Fraction of ordered host pairs that carry any flows.
  double pair_density = 1.0;
  /// Fraction of all generated flows marked as connectivity requirements.
  double cr_fraction = 0.1;
};

/// Fills spec.services, spec.flows, spec.connectivity and uniform ranks.
/// The network must already be populated.
void populate_random_workload(ProblemSpec& spec, const WorkloadConfig& config,
                              util::Rng& rng);

}  // namespace cs::model
