// Security devices (paper Table II) and their deployment costs.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/error.h"
#include "util/fixed.h"

namespace cs::model {

/// Device types the placement model can deploy on links. Values are dense
/// indices; the paper's 1-based id d is `paper_id()`.
enum class DeviceType : std::int8_t {
  kFirewall = 0,
  kIpsec = 1,
  kIds = 2,
  kProxy = 3,
};

inline constexpr int kDeviceCount = 4;

inline constexpr std::array<DeviceType, kDeviceCount> kAllDevices = {
    DeviceType::kFirewall, DeviceType::kIpsec, DeviceType::kIds,
    DeviceType::kProxy};

constexpr int device_index(DeviceType d) { return static_cast<int>(d); }

/// The paper's 1-based device id (Table II).
constexpr int paper_id(DeviceType d) { return device_index(d) + 1; }

constexpr std::string_view device_name(DeviceType d) {
  switch (d) {
    case DeviceType::kFirewall:
      return "Firewall";
    case DeviceType::kIpsec:
      return "IPSec";
    case DeviceType::kIds:
      return "IDS";
    case DeviceType::kProxy:
      return "Proxy";
  }
  return "?";
}

/// Short tag used in placement drawings ("FW", "IPS", ...).
constexpr std::string_view device_tag(DeviceType d) {
  switch (d) {
    case DeviceType::kFirewall:
      return "FW";
    case DeviceType::kIpsec:
      return "IPSec";
    case DeviceType::kIds:
      return "IDS";
    case DeviceType::kProxy:
      return "PXY";
  }
  return "?";
}

/// Average per-unit deployment cost C_d of each device type, in the same
/// currency unit as the budget slider (thousand dollars in the paper).
class DeviceCosts {
 public:
  DeviceCosts() { costs_.fill(util::Fixed::from_int(1)); }

  /// The running example's price list: firewall $5K, IPSec gateway $10K,
  /// IDS $8K, proxy $6K.
  static DeviceCosts defaults() {
    DeviceCosts c;
    c.set(DeviceType::kFirewall, util::Fixed::from_int(5));
    c.set(DeviceType::kIpsec, util::Fixed::from_int(10));
    c.set(DeviceType::kIds, util::Fixed::from_int(8));
    c.set(DeviceType::kProxy, util::Fixed::from_int(6));
    return c;
  }

  void set(DeviceType d, util::Fixed cost) {
    CS_REQUIRE(cost >= util::Fixed{}, "device cost must be non-negative");
    costs_[static_cast<std::size_t>(device_index(d))] = cost;
  }

  util::Fixed cost(DeviceType d) const {
    return costs_[static_cast<std::size_t>(device_index(d))];
  }

 private:
  std::array<util::Fixed, kDeviceCount> costs_;
};

}  // namespace cs::model
