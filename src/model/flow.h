// Service flows g(i, j) — the unit the synthesis decides over.
//
// A flow is an ordered (source host, destination host, service) triple: host
// i accessing service g running on host j. `FlowSet` owns the candidate
// flows of a problem and provides the per-direction grouping the isolation
// metric needs (|G_{i,j}|, the flow count of a directed pair).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/service.h"
#include "topology/network.h"
#include "util/error.h"

namespace cs::model {

/// Dense flow index into a FlowSet.
using FlowId = std::int32_t;
inline constexpr FlowId kInvalidFlow = -1;

struct Flow {
  topology::NodeId src = topology::kInvalidNode;
  topology::NodeId dst = topology::kInvalidNode;
  ServiceId service = kInvalidService;

  bool operator==(const Flow&) const = default;
};

/// Key for a directed host pair.
struct DirectedPair {
  topology::NodeId src = topology::kInvalidNode;
  topology::NodeId dst = topology::kInvalidNode;

  bool operator==(const DirectedPair&) const = default;
};

namespace detail {
inline std::uint64_t pair_key(topology::NodeId a, topology::NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}
inline std::uint64_t flow_key(const Flow& f) {
  // Node ids are small; 24 bits each plus 16 bits of service is ample.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.src))
          << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.dst))
          << 16) |
         static_cast<std::uint16_t>(f.service);
}
}  // namespace detail

class FlowSet {
 public:
  /// Adds a flow; duplicates are rejected. src and dst must differ.
  FlowId add(const Flow& f) {
    CS_REQUIRE(f.src != f.dst, "flow endpoints must differ");
    CS_REQUIRE(f.service != kInvalidService, "flow needs a service");
    const auto key = detail::flow_key(f);
    CS_REQUIRE(!index_.contains(key), "duplicate flow");
    const FlowId id = static_cast<FlowId>(flows_.size());
    flows_.push_back(f);
    index_.emplace(key, id);
    by_pair_[detail::pair_key(f.src, f.dst)].push_back(id);
    return id;
  }

  const Flow& flow(FlowId id) const {
    CS_ENSURE(id >= 0 && id < static_cast<FlowId>(flows_.size()),
              "bad flow id");
    return flows_[static_cast<std::size_t>(id)];
  }

  /// Id of an exact flow, if present.
  std::optional<FlowId> find(const Flow& f) const {
    const auto it = index_.find(detail::flow_key(f));
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  /// Flows from src to dst (G_{i,j}); empty if none.
  const std::vector<FlowId>& directed(topology::NodeId src,
                                      topology::NodeId dst) const {
    static const std::vector<FlowId> kEmpty;
    const auto it = by_pair_.find(detail::pair_key(src, dst));
    return it == by_pair_.end() ? kEmpty : it->second;
  }

  const std::vector<Flow>& all() const { return flows_; }
  std::size_t size() const { return flows_.size(); }
  bool empty() const { return flows_.empty(); }

  /// All directed pairs that carry at least one flow.
  std::vector<DirectedPair> directed_pairs() const {
    std::vector<DirectedPair> out;
    out.reserve(by_pair_.size());
    for (const auto& [key, ids] : by_pair_) {
      (void)ids;
      out.push_back(DirectedPair{
          static_cast<topology::NodeId>(key >> 32),
          static_cast<topology::NodeId>(key & 0xffffffffu)});
    }
    return out;
  }

 private:
  std::vector<Flow> flows_;
  std::unordered_map<std::uint64_t, FlowId> index_;
  std::unordered_map<std::uint64_t, std::vector<FlowId>> by_pair_;
};

}  // namespace cs::model
