// Partial-order completion (paper §III-A, "Score of an Isolation Pattern").
//
// Administrators give *partial* information about relative capability —
// e.g. "deny > trusted", "trusted >= inspection" — and the model derives a
// complete relative order by assigning each item an integer score. This is
// the paper's "simple formal model ... based on the given partial order".
//
// Semantics: build a constraint graph over the items; equality constraints
// merge items; any cycle through a strict edge is contradictory; scores are
// longest strict-edge distances from the bottom, so incomparable items may
// tie. With the paper's Table I input the completion reproduces the paper's
// scores (deny=4, trusted=2, inspect=1, proxy=1, proxy+trusted=3) exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "util/fixed.h"

namespace cs::model {

enum class OrderRelation {
  kEqual,          // a = b
  kGreater,        // a > b
  kGreaterEqual,   // a >= b
};

struct OrderConstraint {
  std::size_t a = 0;
  std::size_t b = 0;
  OrderRelation relation = OrderRelation::kGreater;
};

/// Completes a partial order over `count` items into integer scores ≥ 1.
/// Throws SpecError if the constraints are contradictory.
std::vector<int> complete_order(std::size_t count,
                                const std::vector<OrderConstraint>& constraints);

/// Linearly rescales integer scores into fixed-point values spanning
/// [lo, hi] (the paper normalizes onto a 0..10 slider scale). A uniform
/// score list maps every item to hi.
std::vector<util::Fixed> normalize_scores(const std::vector<int>& scores,
                                          util::Fixed lo, util::Fixed hi);

}  // namespace cs::model
