// Canonical spec fingerprinting (the cache key of src/service).
//
// `fingerprint_spec` maps a finalized ProblemSpec to a stable 128-bit
// digest: two specs that describe the same synthesis problem hash equal
// even when they were *constructed* in different orders, and any
// semantic difference — one score, one connectivity requirement, one
// link, the α weight — changes the digest. The service layer keys its
// result cache on this value, so the guarantee is load-bearing: a
// collision would serve one spec the other spec's design.
//
// Canonical serialization (version tag "cs-spec-v1"). The spec is
// hashed as five per-section sub-digests, each over a fixed documented
// field order; containers whose construction order is NOT semantically
// meaningful are sorted first. The combined digest chains the version
// tag and the five sub-digests, so any semantic change moves exactly
// one sub-digest plus the combined value — that is what lets the cache,
// the warm pool, and `Synthesizer::apply_delta` tell *what* changed
// (docs/DELTAS.md has the composition contract).
//
// topology sub-digest — everything that shapes the encoding's variable
// universe and constants:
//   t1. α
//   t2. network — nodes in id order (kind, name, group size, internet
//       flag), then links as (min endpoint, max endpoint) pairs sorted;
//       link *ids* never enter the digest, so insertion order is free.
//       Node ids ARE identity (flows, CRs and policies reference them),
//       so node order is part of the problem, not of its construction.
//   t3. services in id order (name, protocol, port)
//   t4. isolation config — tunnel margin, enabled patterns sorted by
//       index with score and usability impact, per-service usability
//       overrides in (pattern, service) order
//   t5. host- and app-pattern configs — enabled patterns sorted, with
//       score/cost (+ service restriction for app patterns)
//   t6. device costs in DeviceType order
//   t7. route options (max routes, max hops)
//
// flows sub-digest — the decision universe:
//   f1. flows sorted by (src, dst, service), each with its rank; flow
//       *ids* never enter the digest, so add() order is free
//   f2. connectivity requirements as sorted canonical flow triples
//
// uics sub-digest — retractable policy constraints:
//   u1. user constraints, each encoded to its own sub-digest
//       (tag + canonical fields), sub-digests sorted — set semantics
//   u2. host isolation requirements sorted by (host, minimum)
//
// thresholds sub-digest — sliders I and U; budget sub-digest — slider B.
// These two are deliberately separate from everything above: together
// with topology+flows+uics they split the digest into "encoding shape"
// (SpecDigests::shape) and "query point", which is exactly the warm
// `resolve()` boundary.
//
// The spec must be finalized (ranks installed); fingerprinting a spec
// whose rank table does not match its flow count throws SpecError.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/fixed.h"

namespace cs::model {

struct ProblemSpec;

/// A 128-bit digest. Equality is the cache-key relation; `to_string`
/// renders 32 lowercase hex digits (hi then lo).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;
  std::string to_string() const;
};

/// Hash functor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Streaming 128-bit hasher: two chained 64-bit lanes, each word
/// avalanche-mixed (SplitMix64 finalizer) into the running state. The
/// chaining makes the digest order-sensitive; canonicalization of the
/// input (sorting set-like containers) is the caller's job — see the
/// serialization contract above. Deterministic across runs and
/// platforms (no pointers, no iteration over unordered containers).
class FingerprintHasher {
 public:
  /// Mixes one 64-bit word into both lanes.
  void mix(std::uint64_t word);

  void mix_i64(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_fixed(util::Fixed f) { mix_i64(f.raw()); }

  /// Mixes length + bytes (8-byte little-endian chunks, zero padded).
  void mix_string(std::string_view s);

  /// Folds another digest in (used for sorted sub-digest sets).
  void mix_digest(const Fingerprint& f) {
    mix(f.hi);
    mix(f.lo);
  }

  /// Digest of everything mixed so far (includes the word count, so a
  /// trailing zero word and an empty tail hash differently).
  Fingerprint digest() const;

 private:
  std::uint64_t a_ = 0x6a09e667f3bcc908ull;  // lane seeds: sqrt(2), sqrt(3)
  std::uint64_t b_ = 0xbb67ae8584caa73bull;
  std::uint64_t count_ = 0;
};

/// Per-section sub-digests plus the combined cs-spec-v1 digest. Two
/// specs with equal `combined` are the same synthesis problem; equal
/// sub-digests localize which sections agree (see the contract above).
struct SpecDigests {
  Fingerprint topology;    // network, services, pattern configs, α,
                           // device costs, route options
  Fingerprint flows;       // flows + ranks + connectivity requirements
  Fingerprint uics;        // user constraints + host requirements
  Fingerprint thresholds;  // sliders I, U
  Fingerprint budget;      // slider B
  Fingerprint combined;    // == fingerprint_spec(spec)

  /// Digest of the encoding shape: topology + flows + uics, excluding
  /// the query point (thresholds/budget). Two specs with equal shape
  /// encode to the same formula up to threshold guards, so a warm
  /// synthesizer built for one can `resolve()` the other.
  Fingerprint shape() const;

  bool operator==(const SpecDigests&) const = default;
};

/// All sub-digests of a finalized spec, per the contract above.
SpecDigests fingerprint_sections(const ProblemSpec& spec);

/// Canonical digest of a finalized spec — `fingerprint_sections().combined`.
Fingerprint fingerprint_spec(const ProblemSpec& spec);

}  // namespace cs::model
