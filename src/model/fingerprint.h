// Canonical spec fingerprinting (the cache key of src/service).
//
// `fingerprint_spec` maps a finalized ProblemSpec to a stable 128-bit
// digest: two specs that describe the same synthesis problem hash equal
// even when they were *constructed* in different orders, and any
// semantic difference — one score, one connectivity requirement, one
// link, the α weight — changes the digest. The service layer keys its
// result cache on this value, so the guarantee is load-bearing: a
// collision would serve one spec the other spec's design.
//
// Canonical serialization (version tag "cs-spec-v1"). Fields are fed to
// the hasher in a fixed documented order; containers whose construction
// order is NOT semantically meaningful are sorted first:
//
//   1. version tag, α, sliders (I, U, B)
//   2. network — nodes in id order (kind, name, group size, internet
//      flag), then links as (min endpoint, max endpoint) pairs sorted;
//      link *ids* never enter the digest, so insertion order is free.
//      Node ids ARE identity (flows, CRs and policies reference them),
//      so node order is part of the problem, not of its construction.
//   3. services in id order (name, protocol, port)
//   4. isolation config — tunnel margin, enabled patterns sorted by
//      index with score and usability impact, per-service usability
//      overrides in (pattern, service) order
//   5. host- and app-pattern configs — enabled patterns sorted, with
//      score/cost (+ service restriction for app patterns)
//   6. device costs in DeviceType order
//   7. flows sorted by (src, dst, service), each with its rank; flow
//      *ids* never enter the digest, so add() order is free
//   8. connectivity requirements as sorted canonical flow triples
//   9. user constraints, each encoded to its own sub-digest
//      (tag + canonical fields), sub-digests sorted — set semantics
//  10. host isolation requirements sorted by (host, minimum)
//  11. route options (max routes, max hops)
//
// The spec must be finalized (ranks installed); fingerprinting a spec
// whose rank table does not match its flow count throws SpecError.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/fixed.h"

namespace cs::model {

struct ProblemSpec;

/// A 128-bit digest. Equality is the cache-key relation; `to_string`
/// renders 32 lowercase hex digits (hi then lo).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;
  std::string to_string() const;
};

/// Hash functor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Streaming 128-bit hasher: two chained 64-bit lanes, each word
/// avalanche-mixed (SplitMix64 finalizer) into the running state. The
/// chaining makes the digest order-sensitive; canonicalization of the
/// input (sorting set-like containers) is the caller's job — see the
/// serialization contract above. Deterministic across runs and
/// platforms (no pointers, no iteration over unordered containers).
class FingerprintHasher {
 public:
  /// Mixes one 64-bit word into both lanes.
  void mix(std::uint64_t word);

  void mix_i64(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_fixed(util::Fixed f) { mix_i64(f.raw()); }

  /// Mixes length + bytes (8-byte little-endian chunks, zero padded).
  void mix_string(std::string_view s);

  /// Folds another digest in (used for sorted sub-digest sets).
  void mix_digest(const Fingerprint& f) {
    mix(f.hi);
    mix(f.lo);
  }

  /// Digest of everything mixed so far (includes the word count, so a
  /// trailing zero word and an empty tail hash differently).
  Fingerprint digest() const;

 private:
  std::uint64_t a_ = 0x6a09e667f3bcc908ull;  // lane seeds: sqrt(2), sqrt(3)
  std::uint64_t b_ = 0xbb67ae8584caa73bull;
  std::uint64_t count_ = 0;
};

/// Canonical digest of a finalized spec, per the contract above.
Fingerprint fingerprint_spec(const ProblemSpec& spec);

}  // namespace cs::model
