#include "model/fingerprint.h"

#include <algorithm>
#include <cstring>
#include <variant>
#include <vector>

#include "model/spec.h"
#include "util/error.h"

namespace cs::model {

namespace {

/// SplitMix64 finalizer — full avalanche of one 64-bit word.
constexpr std::uint64_t avalanche(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

/// Canonical (src, dst, service) word for sorting and hashing flows.
std::uint64_t flow_word(const Flow& f) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.src))
          << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.dst))
          << 16) |
         static_cast<std::uint16_t>(f.service);
}

/// Sub-digest of one user constraint: variant tag + canonical fields.
Fingerprint constraint_digest(const UserConstraint& c) {
  FingerprintHasher h;
  std::visit(
      [&h](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ForbidPatternForService>) {
          h.mix(1);
          h.mix_i64(v.service);
          h.mix_i64(pattern_index(v.pattern));
        } else if constexpr (std::is_same_v<T, ForbidPatternForFlow>) {
          h.mix(2);
          h.mix(flow_word(v.flow));
          h.mix_i64(pattern_index(v.pattern));
        } else if constexpr (std::is_same_v<T, RequirePatternForFlow>) {
          h.mix(3);
          h.mix(flow_word(v.flow));
          h.mix_i64(pattern_index(v.pattern));
        } else {
          static_assert(std::is_same_v<T, DenyOneOf>);
          h.mix(4);
          h.mix(flow_word(v.open_flow));
          h.mix(flow_word(v.guard_flow));
        }
      },
      c);
  return h.digest();
}

/// topology sub-digest (t1–t7): the encoding's variable universe and
/// constants — everything except flows, policies, and the query point.
Fingerprint topology_digest(const ProblemSpec& spec) {
  FingerprintHasher h;
  h.mix_fixed(spec.alpha);

  // t2. Network. Nodes in id order (ids are identity); links sorted by
  // endpoint pair so add_link order never matters.
  const topology::Network& net = spec.network;
  h.mix(net.node_count());
  for (const topology::Node& n : net.nodes()) {
    h.mix_i64(static_cast<std::int64_t>(n.kind));
    h.mix_string(n.name);
    h.mix_i64(n.group_size);
    h.mix(n.is_internet ? 1 : 0);
  }
  std::vector<std::pair<topology::NodeId, topology::NodeId>> links;
  links.reserve(net.link_count());
  for (const topology::Link& l : net.links())
    links.emplace_back(std::min(l.a, l.b), std::max(l.a, l.b));
  std::sort(links.begin(), links.end());
  h.mix(links.size());
  for (const auto& [a, b] : links) {
    h.mix_i64(a);
    h.mix_i64(b);
  }

  // t3. Services in id order (ids are identity — flows reference them).
  h.mix(spec.services.size());
  for (const Service& s : spec.services.all()) {
    h.mix_string(s.name);
    h.mix_i64(s.protocol);
    h.mix_i64(s.port);
  }

  // t4. Isolation config. Enabled set sorted by pattern index; the
  // per-service override map is std::map, already (pattern, service)
  // ordered.
  const IsolationConfig& iso = spec.isolation;
  h.mix_i64(iso.tunnel_margin());
  std::vector<IsolationPattern> enabled = iso.enabled();
  std::sort(enabled.begin(), enabled.end());
  h.mix(enabled.size());
  for (const IsolationPattern p : enabled) {
    h.mix_i64(pattern_index(p));
    h.mix_fixed(iso.score(p));
    h.mix_fixed(iso.usability(p, kInvalidService));
  }
  h.mix(iso.usability_overrides().size());
  for (const auto& [key, value] : iso.usability_overrides()) {
    h.mix_i64(key.first);
    h.mix_i64(key.second);
    h.mix_fixed(value);
  }

  // t5. Host- and app-pattern extension configs, enabled sets sorted.
  std::vector<HostPattern> hps = spec.host_patterns.enabled();
  std::sort(hps.begin(), hps.end());
  h.mix(hps.size());
  for (const HostPattern p : hps) {
    h.mix_i64(host_pattern_index(p));
    h.mix_fixed(spec.host_patterns.score(p));
    h.mix_fixed(spec.host_patterns.cost(p));
  }
  std::vector<AppPattern> aps = spec.app_patterns.enabled();
  std::sort(aps.begin(), aps.end());
  h.mix(aps.size());
  for (const AppPattern p : aps) {
    h.mix_i64(app_pattern_index(p));
    h.mix_fixed(spec.app_patterns.score(p));
    h.mix_fixed(spec.app_patterns.cost(p));
    h.mix_i64(spec.app_patterns.only_service(p));
  }

  // t6. Device costs in type order.
  for (const DeviceType d : kAllDevices) h.mix_fixed(spec.device_costs.cost(d));

  // t7. Route options (they change the encoded route sets).
  h.mix(spec.route_options.max_routes);
  h.mix(spec.route_options.max_hops);

  return h.digest();
}

/// flows sub-digest (f1–f2): the decision universe.
Fingerprint flows_digest(const ProblemSpec& spec) {
  FingerprintHasher h;

  // f1. Flows sorted by (src, dst, service), each with its rank. Flow
  // ids never enter the digest, so FlowSet::add order is free.
  std::vector<FlowId> order(spec.flows.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<FlowId>(i);
  std::sort(order.begin(), order.end(), [&](FlowId x, FlowId y) {
    return flow_word(spec.flows.flow(x)) < flow_word(spec.flows.flow(y));
  });
  h.mix(order.size());
  for (const FlowId id : order) {
    h.mix(flow_word(spec.flows.flow(id)));
    h.mix_fixed(spec.ranks.rank(id));
  }

  // f2. Connectivity requirements as sorted canonical flow triples.
  std::vector<std::uint64_t> crs;
  crs.reserve(spec.connectivity.size());
  for (const FlowId id : spec.connectivity.sorted())
    crs.push_back(flow_word(spec.flows.flow(id)));
  std::sort(crs.begin(), crs.end());
  h.mix(crs.size());
  for (const std::uint64_t w : crs) h.mix(w);

  return h.digest();
}

/// uics sub-digest (u1–u2): retractable policy constraints.
Fingerprint uics_digest(const ProblemSpec& spec) {
  FingerprintHasher h;

  // u1. User constraints: sorted sub-digests (set semantics).
  std::vector<Fingerprint> cds;
  cds.reserve(spec.user_constraints.size());
  for (const UserConstraint& c : spec.user_constraints)
    cds.push_back(constraint_digest(c));
  std::sort(cds.begin(), cds.end(), [](const Fingerprint& x,
                                       const Fingerprint& y) {
    return std::tie(x.hi, x.lo) < std::tie(y.hi, y.lo);
  });
  h.mix(cds.size());
  for (const Fingerprint& d : cds) h.mix_digest(d);

  // u2. Host isolation requirements sorted by (host, minimum).
  std::vector<std::pair<topology::NodeId, std::int64_t>> reqs;
  reqs.reserve(spec.host_requirements.size());
  for (const HostIsolationRequirement& r : spec.host_requirements)
    reqs.emplace_back(r.host, r.min_isolation.raw());
  std::sort(reqs.begin(), reqs.end());
  h.mix(reqs.size());
  for (const auto& [host, min] : reqs) {
    h.mix_i64(host);
    h.mix_i64(min);
  }

  return h.digest();
}

}  // namespace

std::string Fingerprint::to_string() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kHex[(hi >> (4 * i)) & 0xf];
    out[static_cast<std::size_t>(31 - i)] = kHex[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

void FingerprintHasher::mix(std::uint64_t word) {
  a_ = avalanche(a_ ^ word);
  b_ = avalanche(b_ + rotl(word, 32));
  ++count_;
}

void FingerprintHasher::mix_string(std::string_view s) {
  mix(s.size());
  for (std::size_t i = 0; i < s.size(); i += 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, s.data() + i, std::min<std::size_t>(8, s.size() - i));
    mix(chunk);
  }
}

Fingerprint FingerprintHasher::digest() const {
  // Mix the lanes into each other so neither half is a function of one
  // lane alone, and fold in the word count.
  const std::uint64_t hi = avalanche(a_ ^ rotl(b_, 17) ^ count_);
  const std::uint64_t lo = avalanche(b_ ^ rotl(a_, 29) ^ (count_ * 0x2545f4914f6cdd1dull));
  return Fingerprint{hi, lo};
}

Fingerprint SpecDigests::shape() const {
  FingerprintHasher h;
  h.mix_string("cs-shape-v1");
  h.mix_digest(topology);
  h.mix_digest(flows);
  h.mix_digest(uics);
  return h.digest();
}

SpecDigests fingerprint_sections(const ProblemSpec& spec) {
  CS_REQUIRE(spec.ranks.size() == spec.flows.size(),
             "fingerprint requires a finalized spec (ranks installed)");
  SpecDigests d;
  d.topology = topology_digest(spec);
  d.flows = flows_digest(spec);
  d.uics = uics_digest(spec);
  {
    FingerprintHasher h;
    h.mix_fixed(spec.sliders.isolation);
    h.mix_fixed(spec.sliders.usability);
    d.thresholds = h.digest();
  }
  {
    FingerprintHasher h;
    h.mix_fixed(spec.sliders.budget);
    d.budget = h.digest();
  }
  FingerprintHasher h;
  h.mix_string("cs-spec-v1");
  h.mix_digest(d.topology);
  h.mix_digest(d.flows);
  h.mix_digest(d.uics);
  h.mix_digest(d.thresholds);
  h.mix_digest(d.budget);
  d.combined = h.digest();
  return d;
}

Fingerprint fingerprint_spec(const ProblemSpec& spec) {
  return fingerprint_sections(spec).combined;
}

}  // namespace cs::model
