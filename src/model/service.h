// Network services (paper §III: g ∈ G, encoded as protocol/port pairs).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace cs::model {

/// Dense service index into the catalog.
using ServiceId = std::int32_t;
inline constexpr ServiceId kInvalidService = -1;

struct Service {
  ServiceId id = kInvalidService;
  std::string name;  // e.g. "WEB", "SSH"
  int protocol = 6;  // IP protocol number (6 = TCP)
  int port = 0;      // destination port
};

/// Registry of the services in scope for a synthesis problem.
class ServiceCatalog {
 public:
  /// Registers a service; names must be unique.
  ServiceId add(std::string name, int protocol = 6, int port = 0) {
    CS_REQUIRE(!find(name).has_value(),
               "duplicate service name '" + name + "'");
    const ServiceId id = static_cast<ServiceId>(services_.size());
    services_.push_back(Service{id, std::move(name), protocol, port});
    return id;
  }

  const Service& service(ServiceId id) const {
    CS_ENSURE(id >= 0 && id < static_cast<ServiceId>(services_.size()),
              "bad service id");
    return services_[static_cast<std::size_t>(id)];
  }

  std::optional<ServiceId> find(const std::string& name) const {
    for (const Service& s : services_)
      if (s.name == name) return s.id;
    return std::nullopt;
  }

  const std::vector<Service>& all() const { return services_; }
  std::size_t size() const { return services_.size(); }

 private:
  std::vector<Service> services_;
};

}  // namespace cs::model
