// Isolation patterns (paper Table I) and the isolation configuration.
//
// An isolation pattern is the kind of security resistance applied to a flow:
// primitive patterns map one-to-one onto a device type (eq. 1 / Table II);
// the composite pattern "proxy with trusted communication" requires both a
// proxy and an IPSec pair. Pattern scores L_k and usability impacts b_k are
// derived from administrator-supplied partial orders (see order.h).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "model/device.h"
#include "model/order.h"
#include "model/service.h"
#include "util/fixed.h"

namespace cs::model {

enum class IsolationPattern : std::int8_t {
  kAccessDeny = 0,          // firewall block
  kTrustedComm = 1,         // IPSec tunnel
  kPayloadInspection = 2,   // IDS on path
  kProxy = 3,               // traffic forwarded through a proxy
  kProxyTrusted = 4,        // composite: proxy + trusted communication
};

inline constexpr int kPatternCount = 5;

inline constexpr std::array<IsolationPattern, kPatternCount> kAllPatterns = {
    IsolationPattern::kAccessDeny, IsolationPattern::kTrustedComm,
    IsolationPattern::kPayloadInspection, IsolationPattern::kProxy,
    IsolationPattern::kProxyTrusted};

constexpr int pattern_index(IsolationPattern p) { return static_cast<int>(p); }

/// The paper's 1-based pattern id k (Table I).
constexpr int paper_id(IsolationPattern p) { return pattern_index(p) + 1; }

std::string_view pattern_name(IsolationPattern p);

/// Devices required to implement the pattern (eq. 1; composite patterns
/// need several).
const std::vector<DeviceType>& devices_for(IsolationPattern p);

/// True if applying the pattern denies the flow entirely.
constexpr bool denies_flow(IsolationPattern p) {
  return p == IsolationPattern::kAccessDeny;
}

/// The paper's Table I partial order:
///   ∀k≠1: L_k < L_1,  L_2 > L_3,  L_2 > L_4,  L_5 > L_2.
std::vector<OrderConstraint> paper_pattern_order();

/// Everything the encoder needs to know about isolation patterns.
class IsolationConfig {
 public:
  /// Paper defaults: all five patterns enabled, Table I scores normalized
  /// to (0, 10], usability b = 0 for access deny and 1 otherwise, tunnel
  /// margin T = 2.
  static IsolationConfig defaults();

  /// Builds scores from a partial order over the *enabled* patterns, then
  /// normalizes into (0, max_score].
  static IsolationConfig from_partial_order(
      std::vector<IsolationPattern> enabled,
      const std::vector<OrderConstraint>& order_over_enabled,
      util::Fixed max_score = util::Fixed::from_int(10));

  const std::vector<IsolationPattern>& enabled() const { return enabled_; }
  bool is_enabled(IsolationPattern p) const;

  /// Relative isolation score L_k on the 0..10 scale.
  util::Fixed score(IsolationPattern p) const;
  void set_score(IsolationPattern p, util::Fixed score);

  /// Usability impact b_k(g) in [0, 1]; per-service overrides win over the
  /// per-pattern default.
  util::Fixed usability(IsolationPattern p, ServiceId g) const;
  void set_usability(IsolationPattern p, util::Fixed b);
  void set_usability_override(IsolationPattern p, ServiceId g, util::Fixed b);

  /// All per-service usability overrides, keyed (pattern index, service);
  /// std::map, so iteration order is deterministic (fingerprinting relies
  /// on this).
  const std::map<std::pair<int, ServiceId>, util::Fixed>&
  usability_overrides() const {
    return usability_override_;
  }

  /// Max hops T that may lie outside an IPSec tunnel at each end (§III-C).
  int tunnel_margin() const { return tunnel_margin_; }
  void set_tunnel_margin(int t);

  /// Largest enabled score (the per-flow isolation ceiling).
  util::Fixed max_enabled_score() const;

 private:
  std::vector<IsolationPattern> enabled_;
  std::array<util::Fixed, kPatternCount> score_{};
  std::array<util::Fixed, kPatternCount> usability_{};
  std::map<std::pair<int, ServiceId>, util::Fixed> usability_override_;
  int tunnel_margin_ = 2;
};

}  // namespace cs::model
