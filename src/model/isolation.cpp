#include "model/isolation.h"

#include <algorithm>

#include "util/error.h"

namespace cs::model {

std::string_view pattern_name(IsolationPattern p) {
  switch (p) {
    case IsolationPattern::kAccessDeny:
      return "Access Deny";
    case IsolationPattern::kTrustedComm:
      return "Trusted Communication";
    case IsolationPattern::kPayloadInspection:
      return "Payload Inspection";
    case IsolationPattern::kProxy:
      return "Proxy Forwarding";
    case IsolationPattern::kProxyTrusted:
      return "Proxy + Trusted Communication";
  }
  return "?";
}

const std::vector<DeviceType>& devices_for(IsolationPattern p) {
  static const std::vector<DeviceType> kDeny{DeviceType::kFirewall};
  static const std::vector<DeviceType> kTrusted{DeviceType::kIpsec};
  static const std::vector<DeviceType> kInspect{DeviceType::kIds};
  static const std::vector<DeviceType> kProxy{DeviceType::kProxy};
  static const std::vector<DeviceType> kProxyTrusted{DeviceType::kProxy,
                                                     DeviceType::kIpsec};
  switch (p) {
    case IsolationPattern::kAccessDeny:
      return kDeny;
    case IsolationPattern::kTrustedComm:
      return kTrusted;
    case IsolationPattern::kPayloadInspection:
      return kInspect;
    case IsolationPattern::kProxy:
      return kProxy;
    case IsolationPattern::kProxyTrusted:
      return kProxyTrusted;
  }
  CS_ENSURE(false, "unknown pattern");
  return kDeny;  // unreachable
}

std::vector<OrderConstraint> paper_pattern_order() {
  // Indices are pattern_index values: deny=0, trusted=1, inspect=2,
  // proxy=3, proxy+trusted=4.
  std::vector<OrderConstraint> order;
  for (const IsolationPattern p : kAllPatterns) {
    if (p == IsolationPattern::kAccessDeny) continue;
    order.push_back(OrderConstraint{
        0, static_cast<std::size_t>(pattern_index(p)),
        OrderRelation::kGreater});  // L_1 > L_k
  }
  order.push_back(OrderConstraint{1, 2, OrderRelation::kGreater});  // L2 > L3
  order.push_back(OrderConstraint{1, 3, OrderRelation::kGreater});  // L2 > L4
  order.push_back(OrderConstraint{4, 1, OrderRelation::kGreater});  // L5 > L2
  return order;
}

IsolationConfig IsolationConfig::defaults() {
  std::vector<IsolationPattern> all(kAllPatterns.begin(), kAllPatterns.end());
  return from_partial_order(std::move(all), paper_pattern_order());
}

IsolationConfig IsolationConfig::from_partial_order(
    std::vector<IsolationPattern> enabled,
    const std::vector<OrderConstraint>& order_over_enabled,
    util::Fixed max_score) {
  CS_REQUIRE(!enabled.empty(), "no isolation patterns enabled");
  CS_REQUIRE(max_score > util::Fixed{}, "max_score must be positive");
  {
    auto sorted = enabled;
    std::sort(sorted.begin(), sorted.end());
    CS_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                   sorted.end(),
               "duplicate enabled pattern");
  }

  // Constraint indices address positions within `enabled`.
  const std::vector<int> raw =
      complete_order(enabled.size(), order_over_enabled);
  // Normalize onto (0, max_score]: lowest raw score maps to
  // max_score / levels, highest to max_score, preserving the ratios the
  // paper's Table I exhibits (1,2,3,4 -> 2.5, 5, 7.5, 10 on a 10 scale).
  const int top = *std::max_element(raw.begin(), raw.end());
  IsolationConfig cfg;
  cfg.enabled_ = std::move(enabled);
  cfg.score_.fill(util::Fixed{});
  cfg.usability_.fill(util::Fixed::from_int(1));
  for (std::size_t i = 0; i < cfg.enabled_.size(); ++i) {
    const auto idx =
        static_cast<std::size_t>(pattern_index(cfg.enabled_[i]));
    cfg.score_[idx] = util::Fixed::from_raw(max_score.raw() * raw[i] / top);
  }
  cfg.usability_[static_cast<std::size_t>(
      pattern_index(IsolationPattern::kAccessDeny))] = util::Fixed{};
  return cfg;
}

bool IsolationConfig::is_enabled(IsolationPattern p) const {
  return std::find(enabled_.begin(), enabled_.end(), p) != enabled_.end();
}

util::Fixed IsolationConfig::score(IsolationPattern p) const {
  return score_[static_cast<std::size_t>(pattern_index(p))];
}

void IsolationConfig::set_score(IsolationPattern p, util::Fixed score) {
  CS_REQUIRE(score >= util::Fixed{}, "isolation score must be >= 0");
  score_[static_cast<std::size_t>(pattern_index(p))] = score;
}

util::Fixed IsolationConfig::usability(IsolationPattern p,
                                       ServiceId g) const {
  const auto it = usability_override_.find({pattern_index(p), g});
  if (it != usability_override_.end()) return it->second;
  return usability_[static_cast<std::size_t>(pattern_index(p))];
}

void IsolationConfig::set_usability(IsolationPattern p, util::Fixed b) {
  CS_REQUIRE(b >= util::Fixed{} && b <= util::Fixed::from_int(1),
             "usability impact must lie in [0, 1]");
  usability_[static_cast<std::size_t>(pattern_index(p))] = b;
}

void IsolationConfig::set_usability_override(IsolationPattern p, ServiceId g,
                                             util::Fixed b) {
  CS_REQUIRE(b >= util::Fixed{} && b <= util::Fixed::from_int(1),
             "usability impact must lie in [0, 1]");
  usability_override_[{pattern_index(p), g}] = b;
}

void IsolationConfig::set_tunnel_margin(int t) {
  CS_REQUIRE(t >= 1, "tunnel margin must be >= 1");
  tunnel_margin_ = t;
}

util::Fixed IsolationConfig::max_enabled_score() const {
  util::Fixed best{};
  for (const IsolationPattern p : enabled_) best = std::max(best, score(p));
  return best;
}

}  // namespace cs::model
