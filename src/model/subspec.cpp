#include "model/subspec.h"

#include <algorithm>
#include <optional>
#include <variant>

#include "util/error.h"

namespace cs::model {

SpecProjection project_spec(const ProblemSpec& spec,
                            std::vector<topology::NodeId> keep_nodes) {
  CS_REQUIRE(spec.ranks.size() == spec.flows.size(),
             "project_spec requires a finalized spec (call finalize())");
  std::sort(keep_nodes.begin(), keep_nodes.end());
  keep_nodes.erase(std::unique(keep_nodes.begin(), keep_nodes.end()),
                   keep_nodes.end());

  const topology::Network& net = spec.network;
  SpecProjection out;
  std::vector<topology::NodeId> local(net.node_count(), topology::kInvalidNode);
  for (const topology::NodeId gid : keep_nodes) {
    CS_REQUIRE(gid >= 0 && static_cast<std::size_t>(gid) < net.node_count(),
               "project_spec: node id out of range");
    const topology::Node& n = net.node(gid);
    topology::NodeId lid;
    if (n.kind == topology::NodeKind::kRouter) {
      lid = out.spec.network.add_router(n.name);
    } else if (n.is_internet) {
      lid = out.spec.network.add_internet(n.name);
    } else {
      lid = out.spec.network.add_host(n.name, n.group_size);
    }
    local[static_cast<std::size_t>(gid)] = lid;
    out.nodes.push_back(gid);
  }
  for (const topology::Link& l : net.links()) {
    const topology::NodeId a = local[static_cast<std::size_t>(l.a)];
    const topology::NodeId b = local[static_cast<std::size_t>(l.b)];
    if (a == topology::kInvalidNode || b == topology::kInvalidNode) continue;
    out.spec.network.add_link(a, b);
    out.links.push_back(l.id);
  }

  out.spec.services = spec.services;
  out.spec.isolation = spec.isolation;
  out.spec.host_patterns = spec.host_patterns;
  out.spec.app_patterns = spec.app_patterns;
  out.spec.device_costs = spec.device_costs;
  out.spec.sliders = spec.sliders;
  out.spec.alpha = spec.alpha;
  out.spec.route_options = spec.route_options;

  const auto remap_flow = [&](const Flow& f) -> std::optional<Flow> {
    const topology::NodeId src = local[static_cast<std::size_t>(f.src)];
    const topology::NodeId dst = local[static_cast<std::size_t>(f.dst)];
    if (src == topology::kInvalidNode || dst == topology::kInvalidNode)
      return std::nullopt;
    return Flow{src, dst, f.service};
  };

  const auto flow_count = static_cast<FlowId>(spec.flows.size());
  for (FlowId f = 0; f < flow_count; ++f) {
    const auto mapped = remap_flow(spec.flows.flow(f));
    if (!mapped.has_value()) continue;
    const FlowId lf = out.spec.flows.add(*mapped);
    out.flows.push_back(f);
    if (spec.connectivity.required(f)) out.spec.connectivity.add(lf);
  }
  out.spec.ranks = FlowRanks::uniform(out.spec.flows);
  for (std::size_t lf = 0; lf < out.flows.size(); ++lf) {
    out.spec.ranks.set(static_cast<FlowId>(lf),
                       spec.ranks.rank(out.flows[lf]));
  }

  for (const UserConstraint& uc : spec.user_constraints) {
    std::visit(
        [&](const auto& c) {
          using T = std::decay_t<decltype(c)>;
          if constexpr (std::is_same_v<T, ForbidPatternForService>) {
            out.spec.user_constraints.push_back(c);
          } else if constexpr (std::is_same_v<T, ForbidPatternForFlow>) {
            if (const auto m = remap_flow(c.flow); m.has_value())
              out.spec.user_constraints.push_back(
                  ForbidPatternForFlow{*m, c.pattern});
          } else if constexpr (std::is_same_v<T, RequirePatternForFlow>) {
            if (const auto m = remap_flow(c.flow); m.has_value())
              out.spec.user_constraints.push_back(
                  RequirePatternForFlow{*m, c.pattern});
          } else if constexpr (std::is_same_v<T, DenyOneOf>) {
            const auto open = remap_flow(c.open_flow);
            const auto guard = remap_flow(c.guard_flow);
            if (open.has_value() && guard.has_value())
              out.spec.user_constraints.push_back(DenyOneOf{*open, *guard});
          }
        },
        uc);
  }

  for (const HostIsolationRequirement& hr : spec.host_requirements) {
    const topology::NodeId h = local[static_cast<std::size_t>(hr.host)];
    if (h == topology::kInvalidNode) continue;
    out.spec.host_requirements.push_back(
        HostIsolationRequirement{h, hr.min_isolation});
  }

  out.sub_digest = fingerprint_spec(out.spec);
  return out;
}

}  // namespace cs::model
