// Risk-based isolation constraints (RMC).
//
// The paper's evaluation methodology (§V) mentions "user-defined
// risk-based constraints for the choice of isolation patterns (RMC)" as a
// model feature it disables for the scalability runs. RMCs here are
// per-host minimum-isolation requirements: a host the organization deems
// risky (an internet-facing server, a till system) must reach at least a
// given isolation score I_j (paper eq. 3), where incoming traffic weighs α
// and outgoing 1−α (eq. 2). This is the one place the α weight changes
// satisfiability — it cancels out of the network-level metric (see
// synth/encoder.cpp).
#pragma once

#include "topology/network.h"
#include "util/fixed.h"

namespace cs::model {

struct HostIsolationRequirement {
  topology::NodeId host = topology::kInvalidNode;
  /// Minimum per-host isolation I_j on the 0..10 scale.
  util::Fixed min_isolation;
};

}  // namespace cs::model
