// Sub-spec projection: restricting a ProblemSpec to a node subset.
//
// The shard planner (src/shard) cuts the topology into regions and solves
// each region as an independent synthesis problem. `project_spec` builds
// that per-region problem: the induced subgraph on the kept nodes, the
// flows whose endpoints both survive, and every piece of policy state
// that still refers to surviving entities — connectivity requirements,
// flow ranks, user constraints, per-host risk requirements. Node, link
// and flow ids are re-densified; the projection keeps the local→global
// maps so the stitcher can lift region designs back into the global id
// space.
//
// Each projection also carries its own cs-spec-v1 fingerprint
// (`sub_digest`): the region sub-spec is a finalized ProblemSpec, so the
// canonical digest machinery applies unchanged, giving the shard layer
// per-region cache keys and cheap "did this region change" comparisons.
#pragma once

#include <vector>

#include "model/fingerprint.h"
#include "model/spec.h"

namespace cs::model {

/// A region sub-spec plus the id maps back into the parent spec.
struct SpecProjection {
  /// The projected problem. Finalized (ranks installed); NOT validated —
  /// a region can legitimately end up with zero flows, which validate()
  /// rejects. Callers must skip the solver for such trivial regions.
  ProblemSpec spec;
  /// Local node id -> global node id, in ascending global order.
  std::vector<topology::NodeId> nodes;
  /// Local link id -> global link id.
  std::vector<topology::LinkId> links;
  /// Local flow id -> global flow id.
  std::vector<FlowId> flows;
  /// Canonical cs-spec-v1 digest of `spec`.
  Fingerprint sub_digest;
};

/// Projects `spec` onto `keep_nodes` (global node ids; deduplicated and
/// sorted internally). The input spec must be finalized. Projection
/// rules:
///   * nodes/links: the induced subgraph, ids re-densified in ascending
///     global-id order;
///   * services, isolation/host/app pattern configs, device costs,
///     sliders, alpha, route options: copied verbatim (service ids are
///     global);
///   * flows: kept iff both endpoints survive, with their global ranks
///     and connectivity-requirement markings;
///   * user constraints: ForbidPatternForService always survives;
///     flow-scoped constraints survive iff their flow(s) survive;
///   * host isolation requirements: kept iff the host survives.
SpecProjection project_spec(const ProblemSpec& spec,
                            std::vector<topology::NodeId> keep_nodes);

}  // namespace cs::model
