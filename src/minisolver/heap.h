// Indexed max-heap over variables ordered by VSIDS activity.
//
// Supports decrease/increase-key by variable id, as the CDCL decision
// heuristic requires (MiniSat's order_heap).
#pragma once

#include <vector>

#include "minisolver/literal.h"
#include "util/error.h"

namespace cs::minisolver {

class ActivityHeap {
 public:
  explicit ActivityHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  bool empty() const { return heap_.empty(); }
  /// Pre-sizes the position index for `n` variables so the bulk
  /// new_var() loops of the encoder don't pay repeated reallocation.
  void reserve(std::size_t n) {
    heap_.reserve(n);
    if (position_.size() < n) position_.resize(n, -1);
  }
  bool contains(Var v) const {
    return v < static_cast<Var>(position_.size()) &&
           position_[static_cast<std::size_t>(v)] >= 0;
  }

  void insert(Var v) {
    grow(v);
    if (contains(v)) return;
    position_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(heap_.size());
    heap_.push_back(v);
    sift_up(heap_.size() - 1);
  }

  Var pop_max() {
    CS_ENSURE(!heap_.empty(), "ActivityHeap::pop_max on empty heap");
    const Var top = heap_.front();
    position_[static_cast<std::size_t>(top)] = -1;
    const Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      position_[static_cast<std::size_t>(last)] = 0;
      sift_down(0);
    }
    return top;
  }

  /// Restores heap order after `v`'s activity increased.
  void update(Var v) {
    if (contains(v))
      sift_up(static_cast<std::size_t>(
          position_[static_cast<std::size_t>(v)]));
  }

 private:
  void grow(Var v) {
    if (static_cast<std::size_t>(v) >= position_.size())
      position_.resize(static_cast<std::size_t>(v) + 1, -1);
  }

  bool less(Var a, Var b) const {
    return activity_[static_cast<std::size_t>(a)] <
           activity_[static_cast<std::size_t>(b)];
  }

  void sift_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(heap_[parent], v)) break;
      heap_[i] = heap_[parent];
      position_[static_cast<std::size_t>(heap_[i])] =
          static_cast<std::int32_t>(i);
      i = parent;
    }
    heap_[i] = v;
    position_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
  }

  void sift_down(std::size_t i) {
    const Var v = heap_[i];
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= heap_.size()) break;
      if (child + 1 < heap_.size() && less(heap_[child], heap_[child + 1]))
        ++child;
      if (!less(v, heap_[child])) break;
      heap_[i] = heap_[child];
      position_[static_cast<std::size_t>(heap_[i])] =
          static_cast<std::int32_t>(i);
      i = child;
    }
    heap_[i] = v;
    position_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<std::int32_t> position_;  // -1 when absent
};

}  // namespace cs::minisolver
