#include "minisolver/pb_constraint.h"

#include <algorithm>
#include <unordered_map>

namespace cs::minisolver {

PbConstraint normalize_pb(std::vector<PbTerm> terms, std::int64_t bound) {
  // Accumulate signed coefficients per positive literal:
  // a·x     contributes +a to x,
  // a·(~x)  is a·(1 − x): contributes −a to x and a to the constant side.
  std::unordered_map<Var, std::int64_t> signed_coeff;
  signed_coeff.reserve(terms.size());
  for (const PbTerm& t : terms) {
    CS_REQUIRE(t.lit.valid(), "PB term with invalid literal");
    if (t.coeff == 0) continue;
    if (t.lit.is_neg()) {
      signed_coeff[t.lit.var()] -= t.coeff;
      bound -= t.coeff;
    } else {
      signed_coeff[t.lit.var()] += t.coeff;
    }
  }

  PbConstraint out;
  out.terms.reserve(signed_coeff.size());
  for (const auto& [var, coeff] : signed_coeff) {
    if (coeff == 0) continue;
    if (coeff > 0) {
      out.terms.push_back(PbTerm{Lit::pos(var), coeff});
    } else {
      // −a·x ≥ b  ≡  a·(~x) ≥ b + a.
      out.terms.push_back(PbTerm{Lit::neg(var), -coeff});
      bound += -coeff;
    }
  }
  out.bound = bound;

  // Deterministic ordering (largest coefficient first) speeds propagation
  // scans and makes behaviour reproducible across runs.
  std::sort(out.terms.begin(), out.terms.end(),
            [](const PbTerm& a, const PbTerm& b) {
              if (a.coeff != b.coeff) return a.coeff > b.coeff;
              return a.lit < b.lit;
            });

  out.max_coeff = out.terms.empty() ? 0 : out.terms.front().coeff;
  out.max_possible = 0;
  for (const PbTerm& t : out.terms) out.max_possible += t.coeff;

  // Cap coefficients at the bound: a_i > bound behaves identically to
  // a_i = bound and keeps slack arithmetic well-conditioned.
  if (out.bound > 0) {
    for (PbTerm& t : out.terms) {
      if (t.coeff > out.bound) {
        out.max_possible -= t.coeff - out.bound;
        t.coeff = out.bound;
      }
    }
    out.max_coeff = std::min(out.max_coeff, out.bound);
  }
  // Watched-sum working state starts empty; the solver builds the watched
  // prefix when the constraint is attached (Solver::add_linear_ge).
  out.watch_sum = 0;
  out.num_watched = 0;
  return out;
}

}  // namespace cs::minisolver
