// Variables, literals and three-valued assignments for the MiniPB solver.
//
// The encoding follows MiniSat: a literal packs a variable index and a sign
// into one integer (2*var + sign), giving dense arrays indexed by
// `Lit::index()`.
#pragma once

#include <cstdint>
#include <string>

namespace cs::minisolver {

/// 0-based variable index.
using Var = std::int32_t;
inline constexpr Var kUndefVar = -1;

class Lit {
 public:
  constexpr Lit() = default;

  /// Positive literal of `v`.
  static constexpr Lit pos(Var v) { return Lit(v << 1); }
  /// Negative literal of `v`.
  static constexpr Lit neg(Var v) { return Lit((v << 1) | 1); }

  constexpr Var var() const { return code_ >> 1; }
  constexpr bool is_neg() const { return (code_ & 1) != 0; }
  constexpr Lit operator~() const { return Lit(code_ ^ 1); }

  /// Dense index for watch/occurrence arrays.
  constexpr std::size_t index() const {
    return static_cast<std::size_t>(code_);
  }

  /// Inverse of index(): reconstructs a literal from its dense index.
  /// The clause arena stores literals as raw 32-bit words (clause.h).
  static constexpr Lit from_index(std::uint32_t idx) {
    return Lit(static_cast<std::int32_t>(idx));
  }

  constexpr bool valid() const { return code_ >= 0; }

  constexpr bool operator==(const Lit&) const = default;
  constexpr auto operator<=>(const Lit&) const = default;

  std::string to_string() const {
    return (is_neg() ? "~x" : "x") + std::to_string(var());
  }

 private:
  constexpr explicit Lit(std::int32_t code) : code_(code) {}
  std::int32_t code_ = -2;
};

inline constexpr Lit kUndefLit{};

/// Three-valued assignment.
enum class LBool : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

/// Truth value of a literal given its variable's value.
inline constexpr LBool lbool_of(LBool var_value, bool lit_is_neg) {
  if (var_value == LBool::kUndef) return LBool::kUndef;
  const bool v = (var_value == LBool::kTrue);
  return (v != lit_is_neg) ? LBool::kTrue : LBool::kFalse;
}

}  // namespace cs::minisolver
