// Luby restart sequence (1,1,2,1,1,2,4,...) used by the CDCL search.
#pragma once

#include <cstdint>

namespace cs::minisolver {

/// The i-th element (i >= 1) of the Luby sequence.
inline std::int64_t luby(std::int64_t i) {
  --i;  // the classic recurrence below is 0-based
  // Find the finite subsequence containing i and its position within it.
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::int64_t{1} << seq;
}

}  // namespace cs::minisolver
