// Clause storage for the MiniPB solver.
#pragma once

#include <vector>

#include "minisolver/literal.h"

namespace cs::minisolver {

struct Clause {
  std::vector<Lit> lits;
  double activity = 0.0;
  bool learnt = false;
  /// A clause acting as the reason of a trail literal must not be deleted.
  bool locked = false;
  /// Tombstone set by clause-database reduction.
  bool deleted = false;

  std::size_t size() const { return lits.size(); }
  Lit& operator[](std::size_t i) { return lits[i]; }
  Lit operator[](std::size_t i) const { return lits[i]; }
};

/// Watcher entry: `blocker` is a literal whose truth makes the clause
/// satisfied without inspection (MiniSat's blocking-literal optimization).
struct Watcher {
  Clause* clause = nullptr;
  Lit blocker = kUndefLit;
};

}  // namespace cs::minisolver
