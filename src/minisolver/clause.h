// Arena-backed clause storage for the MiniPB solver.
//
// Clauses live in one contiguous std::vector<uint32_t> and are addressed
// by 32-bit word offsets (`ClauseRef`) instead of heap pointers — the
// MiniSat allocator design. Wins over per-`new` Clause objects:
//
//   * watcher lists carry 8-byte {ref, blocker} entries instead of
//     16-byte {pointer, blocker}, and successive clauses are adjacent in
//     memory, so the propagation loop's cache behaviour improves;
//   * clause-database reduction frees by marking; a relocation GC
//     (Solver::garbage_collect) compacts live clauses into a fresh arena
//     when the wasted fraction grows, so long solves do not fragment;
//   * the whole clause store is one allocation, making
//     memory_estimate_bytes() exact (capacity vs live vs wasted words).
//
// In-arena layout (32-bit words):
//
//   word 0            header: size(27) | tier(2) | reloced(1) | mark(1)
//                             | learnt(1)
//   word 1..2         learnt only: activity (float bit-cast), then
//                             lbd(31) | touched(1)
//   following words   the literals (Lit::index() codes)
//
// A relocated clause stores its forwarding ref in the word after the
// header (always present: arena clauses have >= 2 literals).
//
// Binary clauses additionally get dedicated inline watch lists
// (`BinWatcher`: the other literal + the ref) so propagating over a
// 2-clause never dereferences the arena at all; the ref is only touched
// when the clause becomes a reason or a conflict.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "minisolver/literal.h"
#include "util/error.h"

namespace cs::minisolver {

/// Word offset of a clause in the arena.
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kRefUndef = 0xFFFFFFFFu;

/// Learnt-clause quality tiers (Glucose/Chanseok-style clause DB):
/// core clauses (LBD <= kCoreLbd) are kept forever, tier2 clauses
/// (LBD <= kTier2Lbd) survive while they keep participating in conflicts,
/// local clauses compete on activity and lose half on every reduce.
enum class ClauseTier : std::uint32_t { kCore = 0, kTier2 = 1, kLocal = 2 };
inline constexpr int kCoreLbd = 3;
inline constexpr int kTier2Lbd = 6;

/// Proxy over one clause's words in the arena. Cheap to construct; valid
/// until the next allocation or GC (the arena vector may move).
class Clause {
 public:
  explicit Clause(std::uint32_t* base) : base_(base) {}

  std::uint32_t size() const { return base_[0] >> 5; }
  bool learnt() const { return (base_[0] & 1u) != 0; }
  bool marked() const { return (base_[0] & 2u) != 0; }
  void mark() { base_[0] |= 2u; }
  bool reloced() const { return (base_[0] & 4u) != 0; }

  ClauseTier tier() const {
    return static_cast<ClauseTier>((base_[0] >> 3) & 3u);
  }
  void set_tier(ClauseTier t) {
    base_[0] = (base_[0] & ~(3u << 3)) |
               (static_cast<std::uint32_t>(t) << 3);
  }

  /// Shrinks the clause in place (root-level false-literal stripping);
  /// the caller accounts the freed tail words as waste.
  void shrink_to(std::uint32_t new_size) {
    base_[0] = (base_[0] & 31u) | (new_size << 5);
  }

  float activity() const { return std::bit_cast<float>(base_[1]); }
  void set_activity(float a) { base_[1] = std::bit_cast<std::uint32_t>(a); }

  int lbd() const { return static_cast<int>(base_[2] >> 1); }
  void set_lbd(int lbd) {
    base_[2] = (static_cast<std::uint32_t>(lbd) << 1) | (base_[2] & 1u);
  }
  /// "Used in a recent conflict" flag driving tier2 → local demotion.
  bool touched() const { return (base_[2] & 1u) != 0; }
  void set_touched(bool t) {
    base_[2] = (base_[2] & ~1u) | (t ? 1u : 0u);
  }

  Lit lit(std::uint32_t i) const {
    return Lit::from_index(base_[lit_offset() + i]);
  }
  void set_lit(std::uint32_t i, Lit l) {
    base_[lit_offset() + i] = static_cast<std::uint32_t>(l.index());
  }
  void swap_lits(std::uint32_t i, std::uint32_t j) {
    std::swap(base_[lit_offset() + i], base_[lit_offset() + j]);
  }
  Lit operator[](std::uint32_t i) const { return lit(i); }

  std::uint32_t lit_offset() const { return learnt() ? 3u : 1u; }

  // GC forwarding (ClauseAllocator only).
  void set_forward(ClauseRef to) {
    base_[0] |= 4u;
    base_[1] = to;
  }
  ClauseRef forward() const { return base_[1]; }

 private:
  std::uint32_t* base_;
};

/// Bump allocator over one uint32 vector, with mark-based freeing and
/// relocation support for Solver::garbage_collect().
class ClauseAllocator {
 public:
  /// Words a clause of `size` literals occupies.
  static std::uint32_t words_for(std::uint32_t size, bool learnt) {
    return size + (learnt ? 3u : 1u);
  }

  ClauseRef alloc(const std::vector<Lit>& lits, bool learnt) {
    CS_ENSURE(lits.size() >= 2, "arena clause needs >= 2 literals");
    const auto size = static_cast<std::uint32_t>(lits.size());
    const auto ref = static_cast<ClauseRef>(mem_.size());
    mem_.resize(mem_.size() + words_for(size, learnt), 0);
    std::uint32_t* base = &mem_[ref];
    base[0] = (size << 5) | (learnt ? 1u : 0u);
    const std::uint32_t off = learnt ? 3u : 1u;
    for (std::uint32_t i = 0; i < size; ++i)
      base[off + i] = static_cast<std::uint32_t>(lits[i].index());
    return ref;
  }

  Clause deref(ClauseRef r) { return Clause(&mem_[r]); }
  const Clause deref(ClauseRef r) const {
    return Clause(const_cast<std::uint32_t*>(&mem_[r]));
  }

  /// Marks the clause deleted and accounts its words as waste. Watchers
  /// and list entries are purged lazily (propagation skip + GC sweep).
  void free_clause(ClauseRef r) {
    Clause c = deref(r);
    CS_ENSURE(!c.marked(), "double free of arena clause");
    wasted_ += words_for(c.size(), c.learnt());
    c.mark();
  }

  /// Accounts `words` tail words freed by an in-place shrink.
  void note_shrink(std::uint32_t words) { wasted_ += words; }

  /// Copies a live clause into `to` (or follows an existing forwarding
  /// ref) and rewrites `r` to the new location.
  void reloc(ClauseRef& r, ClauseAllocator& to) {
    Clause c = deref(r);
    if (c.reloced()) {
      r = c.forward();
      return;
    }
    CS_ENSURE(!c.marked(), "relocating a freed clause");
    const std::uint32_t n = words_for(c.size(), c.learnt());
    const auto fresh = static_cast<ClauseRef>(to.mem_.size());
    to.mem_.insert(to.mem_.end(), &mem_[r], &mem_[r] + n);
    c.set_forward(fresh);
    r = fresh;
  }

  void reserve_words(std::size_t words) { mem_.reserve(words); }

  std::size_t size_words() const { return mem_.size(); }
  std::size_t capacity_words() const { return mem_.capacity(); }
  std::size_t wasted_words() const { return wasted_; }
  std::size_t live_words() const { return mem_.size() - wasted_; }

 private:
  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
};

/// Watcher entry for clauses of >= 3 literals: `blocker` is a literal
/// whose truth satisfies the clause without touching the arena
/// (MiniSat's blocking-literal optimization).
struct Watcher {
  ClauseRef cref = kRefUndef;
  Lit blocker = kUndefLit;
};

/// Inline watcher for binary clauses: propagation reads only `other`
/// (the remaining literal); `cref` is needed solely when the clause
/// becomes a reason or a conflict.
struct BinWatcher {
  Lit other = kUndefLit;
  ClauseRef cref = kRefUndef;
};

}  // namespace cs::minisolver
