// MiniPB: a CDCL satisfiability solver with native linear pseudo-Boolean
// constraints.
//
// This is the from-scratch solving substrate of the repo (DESIGN.md S4): a
// MiniSat-style conflict-driven clause-learning SAT core (two-watched
// literals, VSIDS decision heuristic, 1-UIP clause learning, phase saving,
// Luby restarts, activity-based clause-database reduction) extended with
// counter-propagated pseudo-Boolean constraints Σ a_i·lit_i ≥ bound, which
// is exactly the theory fragment the ConfigSynth encoding needs. It solves
// under assumptions and extracts an unsat core over them, which powers the
// paper's Algorithm 1 (systematic analysis of UNSAT results) without Z3.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "minisolver/clause.h"
#include "minisolver/heap.h"
#include "minisolver/literal.h"
#include "minisolver/pb_constraint.h"

namespace cs::minisolver {

class Solver {
 public:
  enum class Result { kSat, kUnsat, kUnknown };

  struct Stats {
    std::int64_t decisions = 0;
    std::int64_t propagations = 0;
    std::int64_t conflicts = 0;
    std::int64_t restarts = 0;
    std::int64_t learned_clauses = 0;
    std::int64_t deleted_clauses = 0;
    std::int64_t pb_propagations = 0;
  };

  Solver();

  /// Creates a fresh unassigned variable.
  Var new_var();
  std::size_t num_vars() const { return assigns_.size(); }

  /// Adds a clause (≥1 literals). Returns false if the solver is already
  /// in an unsatisfiable state after the addition.
  bool add_clause(std::vector<Lit> lits);

  /// Adds Σ terms ≥ bound. Coefficients may be negative (normalized away).
  bool add_linear_ge(std::vector<PbTerm> terms, std::int64_t bound);

  /// Adds Σ terms ≤ bound (encoded by negating coefficients).
  bool add_linear_le(std::vector<PbTerm> terms, std::int64_t bound);

  /// False once the constraint store is unsatisfiable at level 0.
  bool ok() const { return ok_; }

  /// Solves under the given assumption literals.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model value of a variable after kSat.
  bool model_value(Var v) const;

  /// After kUnsat under assumptions: a subset of the assumption literals
  /// whose conjunction with the constraints is unsatisfiable. Empty when
  /// the constraints alone are unsatisfiable.
  const std::vector<Lit>& unsat_core() const { return unsat_core_; }

  /// Abort search after this many conflicts (0 = unlimited); solve()
  /// returns kUnknown when the budget is exhausted.
  void set_conflict_limit(std::int64_t limit) { conflict_limit_ = limit; }

  /// Abort search after this much wall-clock time per solve() call
  /// (0 = unlimited); returns kUnknown on expiry.
  void set_time_limit_ms(std::int64_t ms) { time_limit_ms_ = ms; }

  const Stats& stats() const { return stats_; }

  /// Rough heap footprint of the constraint store (for Table VI).
  std::size_t memory_estimate_bytes() const;

  /// Debug hook invoked with every learned clause (after minimization).
  /// Used by the test suite to audit soundness against reference models.
  void set_learnt_hook(std::function<void(const std::vector<Lit>&)> hook) {
    learnt_hook_ = std::move(hook);
  }

  /// Periodic progress hook: invoked from the search loop with the
  /// cumulative stats every `every_conflicts` conflicts (0 or an empty
  /// callback disables it). Fires mid-search, so the callback must not
  /// touch the solver; the backend layer uses it to stream
  /// conflict/propagation/restart timelines into the tracer. Cost when
  /// unset: one integer compare per conflict.
  void set_progress_callback(std::int64_t every_conflicts,
                             std::function<void(const Stats&)> callback) {
    if (every_conflicts <= 0 || !callback) {
      progress_every_ = 0;
      progress_ = nullptr;
      return;
    }
    progress_every_ = every_conflicts;
    next_progress_at_ = stats_.conflicts + every_conflicts;
    progress_ = std::move(callback);
  }

 private:
  struct Reason {
    Clause* clause = nullptr;
    PbConstraint* pb = nullptr;
    bool is_none() const { return clause == nullptr && pb == nullptr; }
  };

  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  LBool value(Lit l) const {
    return lbool_of(value(l.var()), l.is_neg());
  }
  int level(Var v) const { return level_[static_cast<std::size_t>(v)]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void new_decision_level() {
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
  }

  /// Assigns `p` true with the given reason; p must be unassigned.
  void unchecked_enqueue(Lit p, Reason reason);

  /// Unit propagation over clauses and PB constraints. Returns the
  /// conflicting constraint, or an empty Reason when the store is stable.
  Reason propagate();

  /// Undoes all assignments above `target_level`.
  void cancel_until(int target_level);

  /// 1-UIP conflict analysis; fills `learnt` (learnt[0] = asserting lit)
  /// and returns the backtrack level.
  int analyze(Reason conflict, std::vector<Lit>& learnt);

  /// Computes the failed-assumption core after an assumption conflict.
  void analyze_final(Lit failed_assumption);

  /// Literals that justify the assignment of `p` by `reason` (p itself
  /// excluded). For PB reasons, only literals falsified before `p`.
  void reason_literals(const Reason& reason, Lit p,
                       std::vector<Lit>& out) const;

  Lit pick_branch_lit();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= kVarDecay; }
  void bump_clause(Clause& c);
  void decay_clause_activity() { clause_inc_ /= kClauseDecay; }
  void attach_clause(Clause* c);
  void detach_clause(Clause* c);
  void reduce_db();

  /// One restart-bounded CDCL search episode.
  Result search(std::int64_t conflict_budget,
                const std::vector<Lit>& assumptions);

  bool out_of_budget() const;

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;

  bool ok_ = true;
  std::vector<LBool> assigns_;
  std::vector<char> polarity_;  // saved phase, 1 = last assigned true
  /// Coefficient-weighted votes from PB constraints for each variable's
  /// initial phase (positive = prefer true); seeds `polarity_` so the
  /// first descent leans toward satisfying the weighted constraints.
  std::vector<std::int64_t> phase_vote_;
  std::vector<int> level_;
  std::vector<std::int32_t> trail_pos_;
  std::vector<Reason> reason_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  std::deque<Clause> clauses_;                 // stable addresses
  std::vector<Clause*> learnts_;
  double max_learnts_ = 0;

  std::deque<PbConstraint> pbs_;
  /// pb_occs_[lit.index()] lists constraints containing `lit` (hit when
  /// `lit` becomes false).
  std::vector<std::vector<std::pair<PbConstraint*, std::int64_t>>> pb_occs_;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  ActivityHeap order_;

  std::vector<char> seen_;  // scratch for analyze
  std::vector<Lit> model_trail_;
  std::vector<char> model_;
  std::vector<Lit> unsat_core_;

  std::function<void(const std::vector<Lit>&)> learnt_hook_;
  std::function<void(const Stats&)> progress_;
  std::int64_t progress_every_ = 0;
  std::int64_t next_progress_at_ = 0;
  std::int64_t conflict_limit_ = 0;
  std::int64_t time_limit_ms_ = 0;
  std::int64_t conflicts_at_solve_start_ = 0;
  double deadline_seconds_ = 0;  // monotonic; 0 = none
  Stats stats_;
};

}  // namespace cs::minisolver
