// MiniPB: a CDCL satisfiability solver with native linear pseudo-Boolean
// constraints.
//
// This is the from-scratch solving substrate of the repo (DESIGN.md S4): a
// MiniSat-style conflict-driven clause-learning SAT core (two-watched
// literals with blocker literals over an arena of 32-bit clause
// references, inline binary-clause watch lists, VSIDS decision heuristic,
// 1-UIP clause learning, phase saving, LBD-tiered clause-database
// reduction with root-level simplification) extended with slack-based
// watched-sum pseudo-Boolean constraints Σ a_i·lit_i ≥ bound, which is
// exactly the theory fragment the ConfigSynth encoding needs.
// The older counter-method PB propagator stays compiled in as a
// runtime-selectable reference (PbMode::kCounter) for differential
// testing and benchmarking. The solver solves under assumptions and
// extracts an unsat core over them, which powers the paper's Algorithm 1
// (systematic analysis of UNSAT results) without Z3.
//
// Search heuristics are runtime-selectable so the differential fuzzer and
// bench_solver_core can ablate each one independently:
//   * restarts — classic Luby episodes (RestartMode::kLuby) or
//     Glucose-style dynamic restarts (kGlucose, the default) driven by a
//     fast/slow LBD moving-average pair: restart when the recent learnt
//     clauses are markedly worse (higher LBD) than the lifetime average.
//     The mode also picks the matching clause-DB reduction cadence:
//     Glucose's conflict schedule vs MiniSat's geometric allowance.
//   * learned-clause minimization — the local self-subsumption check
//     (MinimizeMode::kLocal) or recursive minimization against reason
//     clauses with the standard abstract-level filter (kRecursive, the
//     default).
//   * rephasing — periodic polarity resets cycling through the
//     best-phase snapshot (taken at the deepest trail seen), its
//     inversion, and the original coefficient-vote phases; on by default.
// Every policy is a pure function of the formula — no wall clock, no
// randomness — so capped solves stay bit-for-bit reproducible under any
// configuration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "minisolver/clause.h"
#include "minisolver/heap.h"
#include "minisolver/literal.h"
#include "minisolver/pb_constraint.h"

namespace cs::minisolver {

class Solver {
 public:
  enum class Result { kSat, kUnsat, kUnknown };

  /// Pseudo-Boolean propagation strategy. kWatchedSum visits a constraint
  /// only when one of its *watched* literals is falsified and the watched
  /// coefficient mass drops below bound + max_coeff; kCounter is the
  /// original visit-on-every-falsification reference propagator, kept for
  /// differential testing and as the benchmark baseline.
  enum class PbMode { kWatchedSum, kCounter };

  /// Restart policy: fixed Luby episodes or Glucose-style dynamic
  /// restarts from the recent-vs-lifetime LBD average pair.
  enum class RestartMode { kLuby, kGlucose };

  /// Learned-clause minimization: the local self-subsumption check or
  /// recursive resolution against reason clauses (MiniSat's litRedundant
  /// with the abstract-level filter).
  enum class MinimizeMode { kLocal, kRecursive };

  struct Stats {
    std::int64_t decisions = 0;
    std::int64_t propagations = 0;
    std::int64_t conflicts = 0;
    std::int64_t restarts = 0;
    std::int64_t learned_clauses = 0;
    std::int64_t deleted_clauses = 0;
    std::int64_t pb_propagations = 0;
    // Monotone clause-DB composition counters: clauses *entering* each
    // LBD tier (at learn time, by promotion, or by tier2 demotion for
    // lbd_local), so deltas across solves stay meaningful.
    std::int64_t lbd_core = 0;
    std::int64_t lbd_tier2 = 0;
    std::int64_t lbd_local = 0;
    /// Root-level simplification rounds run between restarts.
    std::int64_t db_simplify_rounds = 0;
    /// Restarts fired by the Glucose LBD condition (subset of restarts;
    /// 0 in kLuby mode — the live restart-mode ablation signal).
    std::int64_t glucose_restarts = 0;
    /// Polarity-reset events (best/inverted/original rephase cycle).
    std::int64_t rephases = 0;
    /// Literals removed from learnt clauses by minimization (either mode).
    std::int64_t minimized_literals = 0;
  };

  /// Exact footprint of the constraint store, split by owner. The arena
  /// numbers distinguish reserved capacity, allocated words, and words
  /// freed-but-not-yet-collected so Table VI reports honest memory.
  struct MemoryBreakdown {
    std::size_t arena_capacity_bytes = 0;
    std::size_t arena_size_bytes = 0;    // allocated (live + wasted)
    std::size_t arena_wasted_bytes = 0;  // freed, awaiting GC
    std::size_t watcher_bytes = 0;
    std::size_t binary_watcher_bytes = 0;
    std::size_t pb_bytes = 0;
    std::size_t pb_occ_bytes = 0;
    std::size_t var_bytes = 0;

    std::size_t total() const {
      return arena_capacity_bytes + watcher_bytes + binary_watcher_bytes +
             pb_bytes + pb_occ_bytes + var_bytes;
    }
    /// Fraction of allocated arena words that are garbage.
    double wasted_fraction() const {
      return arena_size_bytes == 0
                 ? 0.0
                 : static_cast<double>(arena_wasted_bytes) /
                       static_cast<double>(arena_size_bytes);
    }
  };

  Solver();

  /// Creates a fresh unassigned variable.
  Var new_var();
  std::size_t num_vars() const { return assigns_.size(); }

  /// Pre-sizes all per-variable arrays for `n` variables.
  void reserve_vars(std::size_t n);

  /// Adds a clause (≥1 literals). Returns false if the solver is already
  /// in an unsatisfiable state after the addition.
  bool add_clause(std::vector<Lit> lits);

  /// Adds Σ terms ≥ bound. Coefficients may be negative (normalized away).
  bool add_linear_ge(std::vector<PbTerm> terms, std::int64_t bound);

  /// Adds Σ terms ≤ bound (encoded by negating coefficients).
  bool add_linear_le(std::vector<PbTerm> terms, std::int64_t bound);

  /// Selects the PB propagation strategy. Must be called before the first
  /// PB constraint is added; defaults to kWatchedSum.
  void set_pb_mode(PbMode mode);
  PbMode pb_mode() const { return pb_mode_; }

  /// Selects the restart policy (default kGlucose). Takes effect at the
  /// next solve() episode; callable at any time.
  void set_restart_mode(RestartMode mode) { restart_mode_ = mode; }
  RestartMode restart_mode() const { return restart_mode_; }

  /// Selects the learned-clause minimization (default kRecursive).
  void set_minimize_mode(MinimizeMode mode) { minimize_mode_ = mode; }
  MinimizeMode minimize_mode() const { return minimize_mode_; }

  /// Enables/disables periodic rephasing (default on).
  void set_rephase(bool on) { rephase_enabled_ = on; }
  bool rephase_enabled() const { return rephase_enabled_; }

  /// False once the constraint store is unsatisfiable at level 0.
  bool ok() const { return ok_; }

  /// Solves under the given assumption literals.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model value of a variable after kSat.
  bool model_value(Var v) const;

  /// After kUnsat under assumptions: a subset of the assumption literals
  /// whose conjunction with the constraints is unsatisfiable. Empty when
  /// the constraints alone are unsatisfiable.
  const std::vector<Lit>& unsat_core() const { return unsat_core_; }

  /// Abort search after this many conflicts (0 = unlimited); solve()
  /// returns kUnknown when the budget is exhausted.
  void set_conflict_limit(std::int64_t limit) { conflict_limit_ = limit; }

  /// Abort search after this much wall-clock time per solve() call
  /// (0 = unlimited); returns kUnknown on expiry.
  void set_time_limit_ms(std::int64_t ms) { time_limit_ms_ = ms; }

  const Stats& stats() const { return stats_; }

  /// Heap footprint of the constraint store (for Table VI); equals
  /// memory_breakdown().total().
  std::size_t memory_estimate_bytes() const;
  MemoryBreakdown memory_breakdown() const;

  /// Debug invariant check: recomputes every PB constraint's propagation
  /// bookkeeping (watch_sum in kWatchedSum mode, max_possible in kCounter
  /// mode) from the current assignment and compares against the
  /// incrementally maintained values. The differential fuzzer calls this
  /// after every solve.
  bool pb_bookkeeping_ok() const;

  /// Diagnostic: (watched terms, total terms) over all PB constraints.
  /// In kWatchedSum mode the first component is the summed watch-prefix
  /// length — the fraction tells how far the prefixes have degenerated
  /// toward full (counter-equivalent) watching. In kCounter mode both
  /// components equal the total term count.
  std::pair<std::size_t, std::size_t> pb_watched_terms() const;

  /// Debug hook invoked with every learned clause (after minimization).
  /// Used by the test suite to audit soundness against reference models.
  void set_learnt_hook(std::function<void(const std::vector<Lit>&)> hook) {
    learnt_hook_ = std::move(hook);
  }

  /// Periodic progress hook: invoked from the search loop with the
  /// cumulative stats every `every_conflicts` conflicts (0 or an empty
  /// callback disables it). Fires mid-search, so the callback must not
  /// touch the solver; the backend layer uses it to stream
  /// conflict/propagation/restart timelines into the tracer. Cost when
  /// unset: one integer compare per conflict.
  void set_progress_callback(std::int64_t every_conflicts,
                             std::function<void(const Stats&)> callback) {
    if (every_conflicts <= 0 || !callback) {
      progress_every_ = 0;
      progress_ = nullptr;
      return;
    }
    progress_every_ = every_conflicts;
    next_progress_at_ = stats_.conflicts + every_conflicts;
    progress_ = std::move(callback);
  }

 private:
  struct Reason {
    ClauseRef cref = kRefUndef;
    PbConstraint* pb = nullptr;
    bool is_none() const { return cref == kRefUndef && pb == nullptr; }
  };

  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  LBool value(Lit l) const {
    return lbool_of(value(l.var()), l.is_neg());
  }
  int level(Var v) const { return level_[static_cast<std::size_t>(v)]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void new_decision_level() {
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
  }

  /// Assigns `p` true with the given reason; p must be unassigned.
  void unchecked_enqueue(Lit p, Reason reason);

  /// Unit propagation over clauses and PB constraints. Returns the
  /// conflicting constraint, or an empty Reason when the store is stable.
  Reason propagate();

  /// Undoes all assignments above `target_level`.
  void cancel_until(int target_level);

  /// 1-UIP conflict analysis; fills `learnt` (learnt[0] = asserting lit)
  /// and returns the backtrack level.
  int analyze(Reason conflict, std::vector<Lit>& learnt);

  /// Computes the failed-assumption core after an assumption conflict.
  void analyze_final(Lit failed_assumption);

  /// Literals that justify the assignment of `p` by `reason` (p itself
  /// excluded). For PB reasons, only literals falsified before `p`.
  void reason_literals(const Reason& reason, Lit p,
                       std::vector<Lit>& out) const;

  Lit pick_branch_lit();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= kVarDecay; }
  void bump_clause(Clause c);
  void decay_clause_activity() { clause_inc_ /= kClauseDecay; }
  void attach_clause(ClauseRef cref);
  /// Eagerly removes a binary clause's two inline watchers.
  void detach_bin_eager(ClauseRef cref, Lit l0, Lit l1);
  /// Eagerly removes a long clause's two watchers (root simplification
  /// shrinking a clause to binary must reattach it on the binary lists).
  void detach_long_eager(ClauseRef cref, Lit l0, Lit l1);

  /// Distinct decision levels among the literals (the Glucose LBD).
  int compute_lbd(const std::vector<Lit>& lits);
  int compute_lbd(Clause c);
  /// Tier bookkeeping when a learnt clause participates in a conflict:
  /// recompute LBD, promote on improvement, flag tier2 clauses as used.
  void on_learnt_used(Clause c);

  /// Deletes the least-active half of the local tier and demotes tier2
  /// clauses that sat out the epoch (Glucose-style reduction).
  void reduce_db();
  /// Root-level simplification: drops satisfied clauses, strips false
  /// literals, reattaches clauses that shrank to binary.
  void simplify();
  /// Compacts the arena when the wasted fraction exceeds ~20%.
  void maybe_gc();
  void garbage_collect();

  /// Root-level watch-prefix re-tightening (kWatchedSum only). The
  /// prefix only ever grows during search — deep falsification churn
  /// saturates it toward full (counter-equivalent) watching, and a
  /// saturated prefix keeps paying occurrence-list updates for terms
  /// that can no longer matter. At the root every assignment is
  /// permanent, so the tight prefix is recomputable exactly: shrink
  /// back to it and physically drop the stale occurrence entries.
  /// Requires decision_level() == 0.
  void retighten_pb_watches();

  /// One restart-bounded CDCL search episode.
  Result search(std::int64_t conflict_budget,
                const std::vector<Lit>& assumptions);

  bool out_of_budget() const;

  /// Records a learnt clause's LBD in the Glucose restart averages.
  void note_learnt_lbd(int lbd);
  /// Records the trail size at conflict time. kGlucose only: when the
  /// trail is markedly deeper than its lifetime average the search is
  /// plausibly close to a satisfying assignment, so the recent-LBD
  /// window is cleared — postponing the next dynamic restart by a full
  /// window (Glucose's "blocking restarts").
  void note_conflict_trail(std::size_t trail_size);
  /// kGlucose only: recent LBD window is full and markedly above the
  /// lifetime average — time to restart.
  bool glucose_restart_due() const;

  std::uint32_t abstract_level(Var v) const {
    return 1u << (level_[static_cast<std::size_t>(v)] & 31);
  }
  /// MiniSat's litRedundant: true when trail literal `p0`'s assignment is
  /// implied (through reason chains) by the other learnt-clause literals.
  /// Marks visited vars in seen_/minimize_toclear_; a failed probe rolls
  /// its own marks back.
  bool lit_redundant(Lit p0, std::uint32_t abstract_levels);
  /// The local self-subsumption minimization (Sörensson/Biere).
  void minimize_local(std::vector<Lit>& learnt);
  /// Recursive minimization with the abstract-level filter.
  void minimize_recursive(std::vector<Lit>& learnt);

  /// Applies the next entry of the rephase cycle to polarity_.
  void do_rephase();

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;
  /// Glucose restart tuning: recent window size and the margin — restart
  /// when recent_avg > (kGlucoseNum/kGlucoseDen) * lifetime_avg.
  static constexpr std::size_t kLbdWindow = 50;
  static constexpr std::int64_t kGlucoseNum = 5;
  static constexpr std::int64_t kGlucoseDen = 4;
  /// Blocking-restart tuning: block when the conflict-time trail exceeds
  /// (kBlockingNum/kBlockingDen) * lifetime_trail_avg, but only after
  /// enough conflicts that the average is meaningful.
  static constexpr std::int64_t kBlockingNum = 7;
  static constexpr std::int64_t kBlockingDen = 5;
  static constexpr std::int64_t kBlockingMinConflicts = 10000;
  /// First rephase after this many conflicts; the interval doubles after
  /// every rephase so late search settles into its phases.
  static constexpr std::int64_t kRephaseInterval = 1000;
  /// Per-conflict work budget for recursive minimization, counted in
  /// reason literals visited. A PB reason expands to every false term of
  /// its constraint — hundreds of literals on the synthesis encodings —
  /// so the unbounded MiniSat-style DFS can dominate conflict analysis on
  /// long capped burns. When the budget runs out the remaining candidate
  /// literals are kept unexamined (sound: minimization only ever drops
  /// provably redundant literals). The count is a pure function of the
  /// formula, so capped solves stay deterministic.
  static constexpr std::int64_t kMinimizeBudget = 2000;
  /// Glucose's clause-DB reduction schedule (kGlucose restart mode):
  /// first reduction after kReduceBase conflicts, then every
  /// kReduceBase + kReduceInc·k. The kLuby mode keeps the MiniSat-style
  /// geometric max_learnts allowance instead.
  static constexpr std::int64_t kReduceBase = 2000;
  static constexpr std::int64_t kReduceInc = 300;

  bool ok_ = true;
  std::vector<LBool> assigns_;
  std::vector<char> polarity_;  // saved phase, 1 = last assigned true
  /// Coefficient-weighted votes from PB constraints for each variable's
  /// initial phase (positive = prefer true); seeds `polarity_` so the
  /// first descent leans toward satisfying the weighted constraints.
  std::vector<std::int64_t> phase_vote_;
  std::vector<int> level_;
  std::vector<std::int32_t> trail_pos_;
  std::vector<Reason> reason_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;

  ClauseAllocator ca_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  /// Inline binary-clause watchers, same indexing; propagation over these
  /// never touches the arena.
  std::vector<std::vector<BinWatcher>> bin_watches_;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;  // all tiers
  std::size_t num_local_ = 0;       // learnts currently in the local tier
  double max_learnts_ = 0;
  /// Glucose-cadence reduction state (kGlucose restart mode only): the
  /// conflict count that triggers the next reduce_db, and how many
  /// reductions have run (the schedule stretches by kReduceInc each).
  std::int64_t next_reduce_at_ = kReduceBase;
  std::int64_t reduce_count_ = 0;
  /// Root trail size after the last simplify(); another round runs only
  /// once new root facts arrive.
  std::size_t simplified_trail_size_ = 0;

  PbMode pb_mode_ = PbMode::kWatchedSum;
  std::deque<PbConstraint> pbs_;
  /// kCounter mode: pb_occs_[lit.index()] lists constraints containing
  /// `lit` (hit when `lit` becomes false).
  std::vector<std::vector<std::pair<PbConstraint*, std::int64_t>>> pb_occs_;
  /// kWatchedSum mode: same shape, but only *watched* terms are
  /// registered; the lists grow as watched prefixes extend.
  std::vector<std::vector<std::pair<PbConstraint*, std::int64_t>>>
      pb_watch_occs_;
  /// Total PB terms across pbs_, and the number of propagate-time
  /// prefix extensions since the last retighten_pb_watches(). The
  /// retighten fires once growth exceeds a quarter of the total —
  /// often enough to keep occurrence lists near the tight prefix,
  /// rarely enough that shrink/regrow churn amortizes away.
  std::size_t pb_terms_total_ = 0;
  std::size_t pb_watch_growth_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  ActivityHeap order_;

  RestartMode restart_mode_ = RestartMode::kGlucose;
  MinimizeMode minimize_mode_ = MinimizeMode::kRecursive;
  bool rephase_enabled_ = true;
  /// Glucose restart state: circular window of the last kLbdWindow learnt
  /// LBDs (cleared on every restart) against the lifetime LBD average.
  std::vector<int> recent_lbds_;
  std::size_t recent_pos_ = 0;
  std::size_t recent_count_ = 0;
  std::int64_t recent_lbd_sum_ = 0;
  std::int64_t lifetime_lbd_sum_ = 0;
  std::int64_t lifetime_lbd_count_ = 0;
  /// Blocking-restart state: lifetime average of the trail size at
  /// conflict time (exact integer sum/count, so the block decision is
  /// deterministic).
  std::int64_t trail_size_sum_ = 0;
  std::int64_t trail_size_count_ = 0;
  /// Rephase state: polarity snapshot at the deepest trail seen this
  /// solve, the conflict count that triggers the next rephase, and the
  /// position in the best/inverted/original cycle.
  std::vector<char> best_phase_;
  std::size_t best_trail_size_ = 0;
  std::int64_t rephase_interval_ = kRephaseInterval;
  std::int64_t next_rephase_at_ = kRephaseInterval;
  int rephase_kind_ = 0;

  std::vector<char> seen_;  // scratch for analyze
  /// DFS stack + mark log for lit_redundant (recursive minimization).
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> minimize_toclear_;
  /// Remaining work budget (kMinimizeBudget) for the current conflict's
  /// recursive minimization.
  std::int64_t minimize_work_ = 0;
  /// Reused scratch for minimize_recursive (the hot path must not
  /// allocate per conflict).
  std::vector<Lit> minimize_collected_;
  /// Level-stamp scratch for compute_lbd (indexed by decision level).
  std::vector<std::int64_t> lbd_seen_;
  std::int64_t lbd_stamp_ = 0;
  std::vector<Lit> model_trail_;
  std::vector<char> model_;
  std::vector<Lit> unsat_core_;

  std::function<void(const std::vector<Lit>&)> learnt_hook_;
  std::function<void(const Stats&)> progress_;
  std::int64_t progress_every_ = 0;
  std::int64_t next_progress_at_ = 0;
  std::int64_t conflict_limit_ = 0;
  std::int64_t time_limit_ms_ = 0;
  std::int64_t conflicts_at_solve_start_ = 0;
  double deadline_seconds_ = 0;  // monotonic; 0 = none
  Stats stats_;
};

}  // namespace cs::minisolver
