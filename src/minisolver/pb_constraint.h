// Linear pseudo-Boolean constraints: Σ a_i · lit_i ≥ bound.
//
// Every numeric constraint of the ConfigSynth model (network isolation,
// usability, deployment cost) is linear over Boolean decision variables, so
// pseudo-Boolean "at least" constraints are the only theory the solver
// needs. Constraints are normalized so all coefficients are positive
// (negative terms flip the literal and shift the bound).
//
// Propagation uses the counter method: the solver maintains
// `max_possible` = Σ a_i over literals not currently false. When
// max_possible < bound the constraint is conflicting; when an unassigned
// literal has a_i > max_possible − bound it is forced true.
#pragma once

#include <cstdint>
#include <vector>

#include "minisolver/literal.h"
#include "util/error.h"

namespace cs::minisolver {

struct PbTerm {
  Lit lit;
  std::int64_t coeff = 0;  // > 0 after normalization
};

struct PbConstraint {
  std::vector<PbTerm> terms;
  std::int64_t bound = 0;

  // --- solver working state --------------------------------------------
  /// Σ coeff over terms whose literal is not assigned false.
  std::int64_t max_possible = 0;
  /// Largest coefficient (propagation trigger threshold).
  std::int64_t max_coeff = 0;

  /// True when satisfied by every assignment (bound ≤ 0 after
  /// normalization); such constraints are dropped by the solver.
  bool trivially_true() const { return bound <= 0; }

  /// True when no assignment can satisfy it (Σ coeff < bound).
  bool trivially_false() const {
    std::int64_t total = 0;
    for (const PbTerm& t : terms) total += t.coeff;
    return total < bound;
  }
};

/// Normalizes in place: merges duplicate literals, cancels complementary
/// pairs, flips negative coefficients, drops zero terms. Returns the
/// normalized constraint.
PbConstraint normalize_pb(std::vector<PbTerm> terms, std::int64_t bound);

}  // namespace cs::minisolver
