// Linear pseudo-Boolean constraints: Σ a_i · lit_i ≥ bound.
//
// Every numeric constraint of the ConfigSynth model (network isolation,
// usability, deployment cost) is linear over Boolean decision variables, so
// pseudo-Boolean "at least" constraints are the only theory the solver
// needs. Constraints are normalized so all coefficients are positive
// (negative terms flip the literal and shift the bound).
//
// The solver offers two propagation strategies (Solver::PbMode):
//
//   * Watched-sum (default): only a prefix of the coefficient-descending
//     term list is watched. While `watch_sum` — the Σ a_i over watched,
//     non-false terms — is at least bound + max_coeff, neither a conflict
//     nor a propagation is possible and falsifications of unwatched
//     literals are never even visited. When a watched literal falls below
//     the threshold the prefix grows; once every term is watched,
//     watch_sum equals the counter method's max_possible and the same
//     conflict/propagation rules apply.
//   * Counter (reference): the solver maintains `max_possible` = Σ a_i
//     over literals not currently false, visiting every constraint on
//     every falsification of any of its literals. When max_possible <
//     bound the constraint is conflicting; when an unassigned literal has
//     a_i > max_possible − bound it is forced true. Kept compiled in as a
//     debug-checked reference propagator for differential testing.
#pragma once

#include <cstdint>
#include <vector>

#include "minisolver/literal.h"
#include "util/error.h"

namespace cs::minisolver {

struct PbTerm {
  Lit lit;
  std::int64_t coeff = 0;  // > 0 after normalization
};

struct PbConstraint {
  std::vector<PbTerm> terms;
  std::int64_t bound = 0;

  // --- solver working state --------------------------------------------
  /// Counter mode: Σ coeff over terms whose literal is not assigned false.
  std::int64_t max_possible = 0;
  /// Largest coefficient (propagation trigger threshold).
  std::int64_t max_coeff = 0;
  /// Watched-sum mode: Σ coeff over watched terms (the first `num_watched`
  /// of the descending list) whose literal is not assigned false.
  std::int64_t watch_sum = 0;
  /// Watched-sum mode: length of the watched prefix. Watches only grow;
  /// backtracking restores watch_sum, never shrinks the prefix.
  std::size_t num_watched = 0;

  /// True when satisfied by every assignment (bound ≤ 0 after
  /// normalization); such constraints are dropped by the solver.
  bool trivially_true() const { return bound <= 0; }

  /// True when no assignment can satisfy it (Σ coeff < bound).
  bool trivially_false() const {
    std::int64_t total = 0;
    for (const PbTerm& t : terms) total += t.coeff;
    return total < bound;
  }
};

/// Normalizes in place: merges duplicate literals, cancels complementary
/// pairs, flips negative coefficients, drops zero terms. Returns the
/// normalized constraint.
PbConstraint normalize_pb(std::vector<PbTerm> terms, std::int64_t bound);

}  // namespace cs::minisolver
