#include "minisolver/solver.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cmath>
#include <limits>

#include "minisolver/luby.h"
#include "util/error.h"

namespace cs::minisolver {

Solver::Solver() : order_(activity_) {}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(0);
  phase_vote_.push_back(0);
  level_.push_back(0);
  trail_pos_.push_back(-1);
  reason_.push_back(Reason{});
  activity_.push_back(0.0);
  seen_.push_back(0);
  lbd_seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  pb_occs_.emplace_back();
  pb_occs_.emplace_back();
  pb_watch_occs_.emplace_back();
  pb_watch_occs_.emplace_back();
  order_.insert(v);
  return v;
}

void Solver::reserve_vars(std::size_t n) {
  assigns_.reserve(n);
  polarity_.reserve(n);
  phase_vote_.reserve(n);
  level_.reserve(n);
  trail_pos_.reserve(n);
  reason_.reserve(n);
  activity_.reserve(n);
  seen_.reserve(n);
  lbd_seen_.reserve(n);
  trail_.reserve(n);
  watches_.reserve(2 * n);
  bin_watches_.reserve(2 * n);
  pb_occs_.reserve(2 * n);
  pb_watch_occs_.reserve(2 * n);
  order_.reserve(n);
}

void Solver::set_pb_mode(PbMode mode) {
  CS_REQUIRE(pbs_.empty(),
             "set_pb_mode after PB constraints were added");
  pb_mode_ = mode;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  CS_ENSURE(decision_level() == 0, "add_clause above level 0");
  if (!ok_) return false;

  // Simplify: sort, dedup, drop false lits, detect tautology/satisfied.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> keep;
  keep.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    CS_REQUIRE(l.valid() && static_cast<std::size_t>(l.var()) < num_vars(),
               "clause uses unknown variable");
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return true;  // tautology
    if (value(l) == LBool::kTrue) return true;                  // satisfied
    if (value(l) == LBool::kFalse) continue;                    // drop
    keep.push_back(l);
  }
  if (keep.empty()) {
    ok_ = false;
    return false;
  }
  if (keep.size() == 1) {
    unchecked_enqueue(keep[0], Reason{});
    ok_ = propagate().is_none();
    return ok_;
  }
  const ClauseRef cref = ca_.alloc(keep, /*learnt=*/false);
  clauses_.push_back(cref);
  attach_clause(cref);
  return true;
}

bool Solver::add_linear_ge(std::vector<PbTerm> terms, std::int64_t bound) {
  CS_ENSURE(decision_level() == 0, "add_linear_ge above level 0");
  if (!ok_) return false;
  for (const PbTerm& t : terms) {
    CS_REQUIRE(t.lit.valid() &&
                   static_cast<std::size_t>(t.lit.var()) < num_vars(),
               "PB constraint uses unknown variable");
  }

  PbConstraint pb = normalize_pb(std::move(terms), bound);
  if (pb.trivially_true()) return true;
  if (pb.trivially_false()) {
    ok_ = false;
    return false;
  }
  // A single-term constraint with a positive bound is just a unit clause.
  if (pb.terms.size() == 1) {
    return add_clause({pb.terms[0].lit});
  }

  pbs_.push_back(std::move(pb));
  PbConstraint* stored = &pbs_.back();
  pb_terms_total_ += stored->terms.size();
  for (const PbTerm& t : stored->terms) {
    // Seed the initial phase toward satisfying this constraint.
    const auto v = static_cast<std::size_t>(t.lit.var());
    phase_vote_[v] += t.lit.is_neg() ? -t.coeff : t.coeff;
    polarity_[v] = phase_vote_[v] >= 0 ? 1 : 0;
  }

  if (pb_mode_ == PbMode::kCounter) {
    for (const PbTerm& t : stored->terms)
      pb_occs_[t.lit.index()].push_back({stored, t.coeff});
    // Account for level-0 assignments made before this constraint arrived.
    for (const PbTerm& t : stored->terms)
      if (value(t.lit) == LBool::kFalse) stored->max_possible -= t.coeff;
    if (stored->max_possible < stored->bound) {
      ok_ = false;
      return false;
    }
    const std::int64_t slack = stored->max_possible - stored->bound;
    for (const PbTerm& t : stored->terms) {
      if (t.coeff <= slack) break;  // sorted by coefficient, descending
      if (value(t.lit) == LBool::kUndef)
        unchecked_enqueue(t.lit, Reason{kRefUndef, stored});
    }
  } else {
    // Build the initial watched prefix: watch descending-coefficient
    // terms until the non-false watched mass reaches bound + max_coeff
    // (then no falsification of an unwatched literal can matter).
    const std::int64_t threshold = stored->bound + stored->max_coeff;
    while (stored->num_watched < stored->terms.size() &&
           stored->watch_sum < threshold) {
      const PbTerm& t = stored->terms[stored->num_watched++];
      pb_watch_occs_[t.lit.index()].push_back({stored, t.coeff});
      if (value(t.lit) != LBool::kFalse) stored->watch_sum += t.coeff;
    }
    if (stored->watch_sum < threshold) {
      // Fully watched: watch_sum is exactly the counter method's
      // max_possible, so the same conflict/propagation rules apply.
      if (stored->watch_sum < stored->bound) {
        ok_ = false;
        return false;
      }
      const std::int64_t slack = stored->watch_sum - stored->bound;
      for (const PbTerm& t : stored->terms) {
        if (t.coeff <= slack) break;
        if (value(t.lit) == LBool::kUndef)
          unchecked_enqueue(t.lit, Reason{kRefUndef, stored});
      }
    }
  }
  ok_ = propagate().is_none();
  return ok_;
}

bool Solver::add_linear_le(std::vector<PbTerm> terms, std::int64_t bound) {
  for (PbTerm& t : terms) t.coeff = -t.coeff;
  return add_linear_ge(std::move(terms), -bound);
}

void Solver::unchecked_enqueue(Lit p, Reason reason) {
  CS_ENSURE(value(p) == LBool::kUndef, "enqueue of assigned literal");
  const auto v = static_cast<std::size_t>(p.var());
  assigns_[v] = p.is_neg() ? LBool::kFalse : LBool::kTrue;
  polarity_[v] = p.is_neg() ? 0 : 1;
  level_[v] = decision_level();
  trail_pos_[v] = static_cast<std::int32_t>(trail_.size());
  reason_[v] = reason;
  trail_.push_back(p);
  // ~p just became false; maintain whichever PB sum the mode tracks.
  if (pb_mode_ == PbMode::kCounter) {
    for (auto& [pb, coeff] : pb_occs_[(~p).index()])
      pb->max_possible -= coeff;
  } else {
    for (auto& [pb, coeff] : pb_watch_occs_[(~p).index()])
      pb->watch_sum -= coeff;
  }
}

void Solver::cancel_until(int target_level) {
  if (decision_level() <= target_level) return;
  const std::int32_t floor =
      trail_lim_[static_cast<std::size_t>(target_level)];
  for (std::int32_t i = static_cast<std::int32_t>(trail_.size()) - 1;
       i >= floor; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(p.var());
    assigns_[v] = LBool::kUndef;
    reason_[v] = Reason{};
    if (pb_mode_ == PbMode::kCounter) {
      for (auto& [pb, coeff] : pb_occs_[(~p).index()])
        pb->max_possible += coeff;
    } else {
      // Watches registered while ~p was already false never contributed
      // to watch_sum; once ~p is unassigned every watched occurrence
      // contributes, so the unconditional add is the exact inverse.
      for (auto& [pb, coeff] : pb_watch_occs_[(~p).index()])
        pb->watch_sum += coeff;
    }
    order_.insert(p.var());
  }
  trail_.resize(static_cast<std::size_t>(floor));
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  qhead_ = std::min(qhead_, trail_.size());
}

Solver::Reason Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit false_lit = ~p;

    // --- binary clauses watching ~p: no arena access on the fast path ---
    {
      const std::vector<BinWatcher>& bws = bin_watches_[p.index()];
      for (const BinWatcher& bw : bws) {
        const LBool val = value(bw.other);
        if (val == LBool::kFalse) return Reason{bw.cref, nullptr};
        if (val == LBool::kUndef)
          unchecked_enqueue(bw.other, Reason{bw.cref, nullptr});
      }
    }

    // --- long clauses watching ~p (registered under p) ------------------
    std::vector<Watcher>& ws = watches_[p.index()];
    std::size_t keep = 0;
    std::size_t i = 0;
    Reason conflict{};
    for (; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[keep++] = w;
        continue;
      }
      Clause c = ca_.deref(w.cref);
      if (c.marked()) continue;  // lazily dropped by reduce_db/simplify
      // Normalize so the false watched literal sits at position 1.
      if (c[0] == false_lit) c.swap_lits(0, 1);
      CS_ENSURE(c[1] == false_lit, "watch invariant broken");
      const Lit first = c[0];
      if (value(first) == LBool::kTrue) {
        ws[keep++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(c[k]) != LBool::kFalse) {
          c.swap_lits(1, k);
          watches_[(~c[1]).index()].push_back(Watcher{w.cref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = Watcher{w.cref, first};
      if (value(first) == LBool::kFalse) {
        conflict = Reason{w.cref, nullptr};
        ++i;
        break;
      }
      unchecked_enqueue(first, Reason{w.cref, nullptr});
    }
    // Compact the remainder after an early conflict exit.
    for (; i < ws.size(); ++i) ws[keep++] = ws[i];
    ws.resize(keep);
    if (!conflict.is_none()) return conflict;

    // --- PB propagation over constraints watching/containing ~p ---------
    if (pb_mode_ == PbMode::kWatchedSum) {
      // Index-based loop: extending a watched prefix can append to this
      // very occurrence list (when the newly watched term's literal is
      // ~p), so the vector must be re-fetched every iteration.
      const std::size_t fidx = false_lit.index();
      for (std::size_t oi = 0; oi < pb_watch_occs_[fidx].size(); ++oi) {
        PbConstraint* pb = pb_watch_occs_[fidx][oi].first;
        const std::int64_t threshold = pb->bound + pb->max_coeff;
        if (pb->watch_sum >= threshold) continue;
        // Grow the watched prefix until the invariant is restored or
        // every term is watched. Terms already false join the watch list
        // without contributing to watch_sum.
        while (pb->num_watched < pb->terms.size() &&
               pb->watch_sum < threshold) {
          const PbTerm& t = pb->terms[pb->num_watched++];
          pb_watch_occs_[t.lit.index()].push_back({pb, t.coeff});
          ++pb_watch_growth_;
          if (value(t.lit) != LBool::kFalse) pb->watch_sum += t.coeff;
        }
        if (pb->watch_sum >= threshold) continue;
        // Fully watched: watch_sum == Σ coeff over non-false terms.
        if (pb->watch_sum < pb->bound) return Reason{kRefUndef, pb};
        const std::int64_t slack = pb->watch_sum - pb->bound;
        for (const PbTerm& t : pb->terms) {
          if (t.coeff <= slack) break;  // descending coefficients
          if (value(t.lit) == LBool::kUndef) {
            ++stats_.pb_propagations;
            unchecked_enqueue(t.lit, Reason{kRefUndef, pb});
          }
        }
      }
    } else {
      for (auto& [pb, coeff] : pb_occs_[false_lit.index()]) {
        (void)coeff;
        if (pb->max_possible < pb->bound) return Reason{kRefUndef, pb};
        const std::int64_t slack = pb->max_possible - pb->bound;
        if (slack >= pb->max_coeff) continue;
        for (const PbTerm& t : pb->terms) {
          if (t.coeff <= slack) break;  // descending coefficients
          if (value(t.lit) == LBool::kUndef) {
            ++stats_.pb_propagations;
            unchecked_enqueue(t.lit, Reason{kRefUndef, pb});
          }
        }
      }
    }
  }
  return Reason{};
}

void Solver::reason_literals(const Reason& reason, Lit p,
                             std::vector<Lit>& out) const {
  out.clear();
  if (reason.cref != kRefUndef) {
    const Clause c = ca_.deref(reason.cref);
    const std::uint32_t size = c.size();
    for (std::uint32_t k = 0; k < size; ++k) {
      const Lit l = c[k];
      if (!(p.valid() && l == p)) out.push_back(l);
    }
    return;
  }
  CS_ENSURE(reason.pb != nullptr, "reason_literals on decision");
  const std::int32_t p_pos =
      p.valid() ? trail_pos_[static_cast<std::size_t>(p.var())]
                : std::numeric_limits<std::int32_t>::max();
  for (const PbTerm& t : reason.pb->terms) {
    if (t.lit == p) continue;
    if (value(t.lit) != LBool::kFalse) continue;
    if (trail_pos_[static_cast<std::size_t>(t.lit.var())] < p_pos)
      out.push_back(t.lit);
  }
}

void Solver::bump_var(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.update(v);
}

void Solver::bump_clause(Clause c) {
  c.set_activity(c.activity() + static_cast<float>(clause_inc_));
  if (c.activity() > 1e20f) {
    for (const ClauseRef cr : learnts_) {
      Clause l = ca_.deref(cr);
      if (!l.marked()) l.set_activity(l.activity() * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

int Solver::compute_lbd(const std::vector<Lit>& lits) {
  ++lbd_stamp_;
  int lbd = 0;
  for (const Lit l : lits) {
    const auto lev =
        static_cast<std::size_t>(level_[static_cast<std::size_t>(l.var())]);
    if (lev == 0) continue;
    if (lbd_seen_[lev] != lbd_stamp_) {
      lbd_seen_[lev] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

int Solver::compute_lbd(Clause c) {
  ++lbd_stamp_;
  int lbd = 0;
  const std::uint32_t size = c.size();
  for (std::uint32_t k = 0; k < size; ++k) {
    const auto lev = static_cast<std::size_t>(
        level_[static_cast<std::size_t>(c[k].var())]);
    if (lev == 0) continue;
    if (lbd_seen_[lev] != lbd_stamp_) {
      lbd_seen_[lev] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::on_learnt_used(Clause c) {
  if (c.tier() == ClauseTier::kCore) return;
  const int lbd = compute_lbd(c);
  if (lbd < c.lbd()) {
    c.set_lbd(lbd);
    if (lbd <= kCoreLbd) {
      if (c.tier() == ClauseTier::kLocal) --num_local_;
      c.set_tier(ClauseTier::kCore);
      ++stats_.lbd_core;
      return;
    }
    if (lbd <= kTier2Lbd && c.tier() == ClauseTier::kLocal) {
      --num_local_;
      c.set_tier(ClauseTier::kTier2);
      ++stats_.lbd_tier2;
    }
  }
  if (c.tier() == ClauseTier::kTier2) c.set_touched(true);
}

int Solver::analyze(Reason conflict, std::vector<Lit>& learnt) {
  learnt.clear();
  learnt.push_back(kUndefLit);  // slot for the asserting literal

  int counter = 0;
  Lit p = kUndefLit;
  std::vector<Lit> reason_lits;
  auto index = static_cast<std::int32_t>(trail_.size()) - 1;

  do {
    if (conflict.cref != kRefUndef) {
      Clause c = ca_.deref(conflict.cref);
      if (c.learnt()) {
        bump_clause(c);
        on_learnt_used(c);
      }
    }
    reason_literals(conflict, p, reason_lits);
    for (const Lit q : reason_lits) {
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      bump_var(q.var());
      if (level_[v] >= decision_level())
        ++counter;
      else
        learnt.push_back(q);
    }
    // Walk back to the next marked trail literal.
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())])
      --index;
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    conflict = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest of
  // the clause through their (clause or PB) reasons. Sound in both modes
  // because reason literals always precede the justified literal on the
  // trail, so justifications cannot be circular. Both paths clear every
  // seen_ bit analyze set (plus any lit_redundant added).
  const std::size_t before_min = learnt.size();
  if (minimize_mode_ == MinimizeMode::kRecursive)
    minimize_recursive(learnt);
  else
    minimize_local(learnt);
  stats_.minimized_literals +=
      static_cast<std::int64_t>(before_min - learnt.size());

  if (learnt.size() == 1) return 0;
  // Move the literal with the highest level to position 1.
  std::size_t max_i = 1;
  for (std::size_t i = 2; i < learnt.size(); ++i) {
    if (level_[static_cast<std::size_t>(learnt[i].var())] >
        level_[static_cast<std::size_t>(learnt[max_i].var())])
      max_i = i;
  }
  std::swap(learnt[1], learnt[max_i]);
  return level_[static_cast<std::size_t>(learnt[1].var())];
}

void Solver::minimize_local(std::vector<Lit>& learnt) {
  // The local check of Sörensson/Biere: a literal is redundant when every
  // literal of its reason is at level 0 or already in the learnt clause.
  std::vector<char> in_learnt(num_vars(), 0);
  for (std::size_t i = 1; i < learnt.size(); ++i)
    in_learnt[static_cast<std::size_t>(learnt[i].var())] = 1;
  // seen_ must be cleared for every collected literal — including ones the
  // pruning drops — or stale bits corrupt later conflict analyses.
  const std::vector<Lit> collected(learnt.begin() + 1, learnt.end());
  std::vector<Lit> reason_lits;
  std::vector<Lit> pruned;
  pruned.push_back(learnt[0]);
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Lit q = learnt[i];
    const Reason& r = reason_[static_cast<std::size_t>(q.var())];
    bool redundant = false;
    if (!r.is_none()) {
      reason_literals(r, ~q, reason_lits);
      redundant = !reason_lits.empty();
      for (const Lit x : reason_lits) {
        const auto xv = static_cast<std::size_t>(x.var());
        if (level_[xv] != 0 && !in_learnt[xv]) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) pruned.push_back(q);
    else in_learnt[static_cast<std::size_t>(q.var())] = 0;
  }
  learnt = std::move(pruned);
  for (const Lit l : collected)
    seen_[static_cast<std::size_t>(l.var())] = 0;
}

bool Solver::lit_redundant(Lit p0, std::uint32_t abstract_levels) {
  // Iterative DFS through reason chains. seen_ doubles as the visited
  // set: entry state has it set exactly for the learnt-clause vars, and
  // every var this probe marks is logged in minimize_toclear_ so a
  // failed probe can roll back to its own start (marks from successful
  // probes stay — they are proven redundant-covered and memoize later
  // probes, exactly MiniSat's analyze_toclear discipline).
  //
  // Reasons are walked inline rather than through reason_literals: PB
  // reasons expand to every false term of their constraint (hundreds of
  // literals here), and most probes die on the first blocking decision —
  // materializing the full expansion first would pay the whole walk to
  // learn that.
  analyze_stack_.assign(1, p0);
  const std::size_t top = minimize_toclear_.size();
  // The per-literal DFS step: skip already-covered vars, descend through
  // propagated vars inside the clause's levels, fail on anything else.
  const auto step = [&](Lit l) -> bool {
    const auto v = static_cast<std::size_t>(l.var());
    if (seen_[v] || level_[v] == 0) return true;
    if (!reason_[v].is_none() &&
        (abstract_level(l.var()) & abstract_levels) != 0) {
      seen_[v] = 1;
      analyze_stack_.push_back(~l);  // the trail literal for l's var
      minimize_toclear_.push_back(l);
      return true;
    }
    return false;  // a blocking decision/level: p0 is not redundant
  };
  while (!analyze_stack_.empty()) {
    const Lit p = analyze_stack_.back();
    analyze_stack_.pop_back();
    const Reason& r = reason_[static_cast<std::size_t>(p.var())];
    bool blocked = minimize_work_ <= 0;  // budget exhausted = blocked
    if (!blocked && r.cref != kRefUndef) {
      const Clause c = ca_.deref(r.cref);
      const std::uint32_t size = c.size();
      minimize_work_ -= size;
      for (std::uint32_t k = 0; k < size && !blocked; ++k) {
        const Lit l = c[k];
        if (l != p && !step(l)) blocked = true;
      }
    } else if (!blocked) {
      const std::int32_t p_pos =
          trail_pos_[static_cast<std::size_t>(p.var())];
      minimize_work_ -=
          static_cast<std::int64_t>(r.pb->terms.size());
      for (const PbTerm& t : r.pb->terms) {
        if (t.lit == p || value(t.lit) != LBool::kFalse) continue;
        if (trail_pos_[static_cast<std::size_t>(t.lit.var())] < p_pos &&
            !step(t.lit)) {
          blocked = true;
          break;
        }
      }
    }
    if (blocked) {
      // Undo only this probe's marks.
      for (std::size_t j = top; j < minimize_toclear_.size(); ++j)
        seen_[static_cast<std::size_t>(minimize_toclear_[j].var())] = 0;
      minimize_toclear_.resize(top);
      return false;
    }
  }
  return true;
}

void Solver::minimize_recursive(std::vector<Lit>& learnt) {
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i)
    abstract_levels |= abstract_level(learnt[i].var());
  minimize_collected_.assign(learnt.begin() + 1, learnt.end());
  minimize_toclear_.clear();
  minimize_work_ = kMinimizeBudget;
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Lit q = learnt[i];
    const Reason& r = reason_[static_cast<std::size_t>(q.var())];
    if (r.is_none() || minimize_work_ <= 0 ||
        !lit_redundant(~q, abstract_levels))
      learnt[keep++] = q;
  }
  learnt.resize(keep);
  for (const Lit l : minimize_collected_)
    seen_[static_cast<std::size_t>(l.var())] = 0;
  for (const Lit l : minimize_toclear_)
    seen_[static_cast<std::size_t>(l.var())] = 0;
  minimize_toclear_.clear();
}

void Solver::analyze_final(Lit failed_assumption) {
  unsat_core_.clear();
  unsat_core_.push_back(failed_assumption);
  if (decision_level() == 0) return;

  seen_[static_cast<std::size_t>(failed_assumption.var())] = 1;
  std::vector<Lit> reason_lits;
  for (auto i = static_cast<std::int32_t>(trail_.size()) - 1;
       i >= trail_lim_[0]; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(p.var());
    if (!seen_[v]) continue;
    const Reason& r = reason_[v];
    if (r.is_none()) {
      // A decision inside the assumption prefix is an assumption literal.
      unsat_core_.push_back(p);
    } else {
      reason_literals(r, p, reason_lits);
      for (const Lit q : reason_lits)
        if (level_[static_cast<std::size_t>(q.var())] > 0)
          seen_[static_cast<std::size_t>(q.var())] = 1;
    }
    seen_[v] = 0;
  }
  seen_[static_cast<std::size_t>(failed_assumption.var())] = 0;
}

Lit Solver::pick_branch_lit() {
  while (!order_.empty()) {
    const Var v = order_.pop_max();
    if (value(v) == LBool::kUndef) {
      return polarity_[static_cast<std::size_t>(v)] ? Lit::pos(v)
                                                    : Lit::neg(v);
    }
  }
  return kUndefLit;
}

void Solver::attach_clause(ClauseRef cref) {
  const Clause c = ca_.deref(cref);
  CS_ENSURE(c.size() >= 2, "attach of short clause");
  const Lit l0 = c[0];
  const Lit l1 = c[1];
  if (c.size() == 2) {
    bin_watches_[(~l0).index()].push_back(BinWatcher{l1, cref});
    bin_watches_[(~l1).index()].push_back(BinWatcher{l0, cref});
  } else {
    watches_[(~l0).index()].push_back(Watcher{cref, l1});
    watches_[(~l1).index()].push_back(Watcher{cref, l0});
  }
}

void Solver::detach_bin_eager(ClauseRef cref, Lit l0, Lit l1) {
  for (const Lit l : {l0, l1}) {
    std::vector<BinWatcher>& bws = bin_watches_[(~l).index()];
    std::erase_if(bws,
                  [cref](const BinWatcher& bw) { return bw.cref == cref; });
  }
}

void Solver::detach_long_eager(ClauseRef cref, Lit l0, Lit l1) {
  for (const Lit l : {l0, l1}) {
    std::vector<Watcher>& ws = watches_[(~l).index()];
    std::erase_if(ws, [cref](const Watcher& w) { return w.cref == cref; });
  }
}

void Solver::reduce_db() {
  // Glucose-style tiered reduction: core clauses are permanent, tier2
  // clauses that sat out the epoch demote to local, and the least-active
  // half of the (unlocked, non-binary) local tier is deleted.
  const auto locked = [&](ClauseRef cr, const Clause& c) {
    const Lit l0 = c[0];
    const auto v = static_cast<std::size_t>(l0.var());
    return value(l0) == LBool::kTrue && reason_[v].cref == cr;
  };
  std::vector<ClauseRef> locals;
  locals.reserve(num_local_);
  for (const ClauseRef cr : learnts_) {
    const Clause c = ca_.deref(cr);
    if (c.marked() || c.tier() != ClauseTier::kLocal) continue;
    if (c.size() <= 2 || locked(cr, c)) continue;
    locals.push_back(cr);
  }
  std::sort(locals.begin(), locals.end(),
            [&](ClauseRef a, ClauseRef b) {
              const float aa = ca_.deref(a).activity();
              const float ab = ca_.deref(b).activity();
              if (aa != ab) return aa < ab;
              return a < b;  // deterministic tie-break (arena order = age)
            });
  const std::size_t to_delete = locals.size() / 2;
  for (std::size_t i = 0; i < to_delete; ++i) {
    ca_.free_clause(locals[i]);
    ++stats_.deleted_clauses;
    --num_local_;
  }
  for (const ClauseRef cr : learnts_) {
    Clause c = ca_.deref(cr);
    if (c.marked() || c.tier() != ClauseTier::kTier2) continue;
    if (c.touched()) {
      c.set_touched(false);
    } else {
      c.set_tier(ClauseTier::kLocal);
      ++num_local_;
      ++stats_.lbd_local;
    }
  }
  std::erase_if(learnts_, [this](ClauseRef cr) {
    return ca_.deref(cr).marked();
  });
  maybe_gc();
}

void Solver::simplify() {
  CS_ENSURE(decision_level() == 0, "simplify above level 0");
  if (!ok_) return;
  // Root-level assignments are permanent and their reasons are never
  // examined again (analyze/analyze_final skip level 0), so clear them:
  // no clause stays locked and the GC has no root reasons to chase.
  for (const Lit p : trail_)
    reason_[static_cast<std::size_t>(p.var())] = Reason{};

  const auto process = [&](std::vector<ClauseRef>& list, bool learnt_list) {
    std::size_t keep_n = 0;
    for (const ClauseRef cr : list) {
      Clause c = ca_.deref(cr);
      if (c.marked()) continue;
      bool satisfied = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 0; k < size; ++k) {
        if (value(c[k]) == LBool::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) {
        if (size == 2) detach_bin_eager(cr, c[0], c[1]);
        if (learnt_list && c.tier() == ClauseTier::kLocal) --num_local_;
        ca_.free_clause(cr);
        ++stats_.deleted_clauses;
        continue;
      }
      // Strip root-false literals. At a stable root the two watched
      // positions of a non-satisfied clause are unassigned, so false
      // literals only occur at positions >= 2.
      std::uint32_t n = size;
      for (std::uint32_t k = 2; k < n;) {
        if (value(c[k]) == LBool::kFalse) {
          c.swap_lits(k, n - 1);
          --n;
        } else {
          ++k;
        }
      }
      if (n != size) {
        ca_.note_shrink(size - n);
        const Lit w0 = c[0];
        const Lit w1 = c[1];
        c.shrink_to(n);
        if (n == 2) {
          // The long-list watchers are stale; move to the binary lists.
          // Binary clauses are never reduced, so promote learnts to core.
          detach_long_eager(cr, w0, w1);
          attach_clause(cr);
          if (learnt_list && c.tier() != ClauseTier::kCore) {
            if (c.tier() == ClauseTier::kLocal) --num_local_;
            c.set_tier(ClauseTier::kCore);
            c.set_lbd(std::min(c.lbd(), 2));
            ++stats_.lbd_core;
          }
        }
      }
      list[keep_n++] = cr;
    }
    list.resize(keep_n);
  };
  process(clauses_, /*learnt_list=*/false);
  process(learnts_, /*learnt_list=*/true);
  ++stats_.db_simplify_rounds;
  simplified_trail_size_ = trail_.size();
  maybe_gc();
}

void Solver::maybe_gc() {
  if (ca_.wasted_words() * 5 > ca_.size_words()) garbage_collect();
}

void Solver::retighten_pb_watches() {
  if (pb_mode_ != PbMode::kWatchedSum) return;
  // Growth-triggered: scanning every constraint pays off only once the
  // prefixes have inflated measurably past tight; below the threshold
  // the shrink/regrow churn costs more than the shorter lists save.
  if (pb_watch_growth_ * 4 <= pb_terms_total_) return;
  CS_ENSURE(decision_level() == 0, "retighten above the root");
  for (PbConstraint& pb : pbs_) {
    // Recompute the tight prefix under the root assignment. Between
    // episodes every constraint satisfies the watch invariant
    // (watch_sum >= threshold or fully watched), so the tight prefix is
    // never longer than the current one — shrinking needs no new
    // occurrence registrations.
    const std::int64_t threshold = pb.bound + pb.max_coeff;
    std::size_t tight = 0;
    std::int64_t sum = 0;
    while (tight < pb.terms.size() && sum < threshold) {
      if (value(pb.terms[tight].lit) != LBool::kFalse)
        sum += pb.terms[tight].coeff;
      ++tight;
    }
    if (tight >= pb.num_watched) continue;
    // Drop the stale tail's occurrence entries: normalize_pb merges
    // duplicate variables, so each (constraint, literal) pair has
    // exactly one entry.
    for (std::size_t i = tight; i < pb.num_watched; ++i) {
      auto& occ = pb_watch_occs_[pb.terms[i].lit.index()];
      for (std::size_t j = 0; j < occ.size(); ++j) {
        if (occ[j].first == &pb) {
          occ[j] = occ.back();
          occ.pop_back();
          break;
        }
      }
    }
    pb.num_watched = tight;
    pb.watch_sum = sum;
  }
  pb_watch_growth_ = 0;
}

void Solver::garbage_collect() {
  ClauseAllocator fresh;
  fresh.reserve_words(ca_.live_words());
  // Watcher lists: purge entries for deleted clauses, relocate the rest.
  for (std::vector<Watcher>& ws : watches_) {
    std::size_t keep = 0;
    for (Watcher& w : ws) {
      if (ca_.deref(w.cref).marked()) continue;
      ca_.reloc(w.cref, fresh);
      ws[keep++] = w;
    }
    ws.resize(keep);
  }
  // Binary clauses are only ever freed with eager watcher removal
  // (simplify), so every binary watcher is live.
  for (std::vector<BinWatcher>& bws : bin_watches_) {
    for (BinWatcher& bw : bws) ca_.reloc(bw.cref, fresh);
  }
  // Reasons of current trail literals (reduce_db never frees locked
  // clauses; root reasons are cleared by simplify before it frees).
  for (const Lit p : trail_) {
    Reason& r = reason_[static_cast<std::size_t>(p.var())];
    if (r.cref != kRefUndef) ca_.reloc(r.cref, fresh);
  }
  const auto reloc_list = [&](std::vector<ClauseRef>& list) {
    std::size_t keep = 0;
    for (ClauseRef& cr : list) {
      if (ca_.deref(cr).marked()) continue;
      ca_.reloc(cr, fresh);
      list[keep++] = cr;
    }
    list.resize(keep);
  };
  reloc_list(clauses_);
  reloc_list(learnts_);
  ca_ = std::move(fresh);
}

Solver::Result Solver::search(std::int64_t conflict_budget,
                              const std::vector<Lit>& assumptions) {
  std::int64_t conflicts_here = 0;
  std::vector<Lit> learnt;

  while (true) {
    const Reason conflict = propagate();
    if (!conflict.is_none()) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (progress_every_ > 0 && stats_.conflicts >= next_progress_at_) {
        next_progress_at_ = stats_.conflicts + progress_every_;
        progress_(stats_);
      }
      if (decision_level() == 0) {
        ok_ = false;
        unsat_core_.clear();
        return Result::kUnsat;
      }
      note_conflict_trail(trail_.size());
      const int bt_level = analyze(conflict, learnt);
      if (learnt_hook_) learnt_hook_(learnt);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        note_learnt_lbd(1);
        unchecked_enqueue(learnt[0], Reason{});
      } else {
        const int lbd = compute_lbd(learnt);
        note_learnt_lbd(lbd);
        const ClauseRef cref = ca_.alloc(learnt, /*learnt=*/true);
        Clause c = ca_.deref(cref);
        c.set_lbd(lbd);
        if (lbd <= kCoreLbd) {
          c.set_tier(ClauseTier::kCore);
          ++stats_.lbd_core;
        } else if (lbd <= kTier2Lbd) {
          c.set_tier(ClauseTier::kTier2);
          ++stats_.lbd_tier2;
        } else {
          c.set_tier(ClauseTier::kLocal);
          ++num_local_;
          ++stats_.lbd_local;
        }
        learnts_.push_back(cref);
        ++stats_.learned_clauses;
        bump_clause(c);
        attach_clause(cref);
        unchecked_enqueue(learnt[0], Reason{cref, nullptr});
      }
      decay_var_activity();
      decay_clause_activity();
      continue;
    }

    // Best-phase tracking for rephasing: snapshot the saved polarities
    // whenever the trail reaches a new high-water mark (a ~3% growth
    // threshold bounds the O(vars) copies to a logarithmic count).
    if (rephase_enabled_ &&
        trail_.size() > best_trail_size_ + best_trail_size_ / 32) {
      best_trail_size_ = trail_.size();
      best_phase_.assign(polarity_.begin(), polarity_.end());
    }

    const bool glucose_due = glucose_restart_due();
    if (conflicts_here >= conflict_budget || glucose_due) {
      ++stats_.restarts;
      if (glucose_due) {
        ++stats_.glucose_restarts;
        recent_count_ = 0;
        recent_pos_ = 0;
        recent_lbd_sum_ = 0;
      }
      cancel_until(0);
      return Result::kUnknown;  // restart
    }
    if (out_of_budget()) {
      cancel_until(0);
      return Result::kUnknown;
    }
    // Clause-DB reduction cadence follows the restart mode's native
    // policy. kGlucose reduces on Glucose's conflict schedule (first at
    // kReduceBase conflicts, then every kReduceBase + kReduceInc·k) —
    // aggressive deletion keeps the local tier small, so propagation
    // stays fast across long capped burns. kLuby keeps the MiniSat-style
    // geometric allowance the seed configuration shipped with.
    if (restart_mode_ == RestartMode::kGlucose) {
      if (stats_.conflicts >= next_reduce_at_) {
        reduce_db();
        ++reduce_count_;
        next_reduce_at_ =
            stats_.conflicts + kReduceBase + kReduceInc * reduce_count_;
      }
    } else if (static_cast<double>(num_local_) > max_learnts_) {
      reduce_db();
      max_learnts_ *= 1.5;
    }

    // Extend with assumptions first, then heuristics.
    Lit next = kUndefLit;
    while (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a =
          assumptions[static_cast<std::size_t>(decision_level())];
      if (value(a) == LBool::kTrue) {
        new_decision_level();  // dummy level keeps the indexing aligned
      } else if (value(a) == LBool::kFalse) {
        analyze_final(a);
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (!next.valid()) {
      next = pick_branch_lit();
      if (!next.valid()) {
        // Full assignment: record the model.
        model_.assign(num_vars(), 0);
        for (std::size_t v = 0; v < num_vars(); ++v)
          model_[v] = (assigns_[v] == LBool::kTrue) ? 1 : 0;
        return Result::kSat;
      }
      ++stats_.decisions;
    }
    new_decision_level();
    unchecked_enqueue(next, Reason{});
  }
}

void Solver::note_learnt_lbd(int lbd) {
  ++lifetime_lbd_count_;
  lifetime_lbd_sum_ += lbd;
  if (restart_mode_ != RestartMode::kGlucose) return;
  if (recent_lbds_.size() < kLbdWindow) recent_lbds_.resize(kLbdWindow, 0);
  if (recent_count_ == kLbdWindow)
    recent_lbd_sum_ -= recent_lbds_[recent_pos_];
  else
    ++recent_count_;
  recent_lbds_[recent_pos_] = lbd;
  recent_lbd_sum_ += lbd;
  recent_pos_ = (recent_pos_ + 1) % kLbdWindow;
}

void Solver::note_conflict_trail(std::size_t trail_size) {
  ++trail_size_count_;
  trail_size_sum_ += static_cast<std::int64_t>(trail_size);
  if (restart_mode_ != RestartMode::kGlucose) return;
  if (trail_size_count_ < kBlockingMinConflicts) return;
  if (recent_count_ < kLbdWindow) return;
  // trail > (kBlockingNum/kBlockingDen) * avg, cross-multiplied.
  if (static_cast<std::int64_t>(trail_size) * trail_size_count_ *
          kBlockingDen >
      trail_size_sum_ * kBlockingNum) {
    recent_count_ = 0;
    recent_pos_ = 0;
    recent_lbd_sum_ = 0;
  }
}

bool Solver::glucose_restart_due() const {
  if (restart_mode_ != RestartMode::kGlucose) return false;
  if (recent_count_ < kLbdWindow) return false;
  // recent_avg > (kGlucoseNum/kGlucoseDen) * lifetime_avg, cross-
  // multiplied to stay in exact integer arithmetic (deterministic).
  return recent_lbd_sum_ * lifetime_lbd_count_ * kGlucoseDen >
         lifetime_lbd_sum_ * static_cast<std::int64_t>(kLbdWindow) *
             kGlucoseNum;
}

void Solver::do_rephase() {
  const std::size_t n = num_vars();
  switch (rephase_kind_ % 3) {
    case 0:  // best: the phases at the deepest trail seen this solve
      if (best_trail_size_ > 0 && best_phase_.size() == n)
        polarity_ = best_phase_;
      break;
    case 1:  // inverted: kick the search out of its current basin
      for (char& p : polarity_) p ^= 1;
      break;
    case 2:  // original: the coefficient-weighted PB phase votes
      for (std::size_t v = 0; v < n; ++v)
        polarity_[v] = phase_vote_[v] >= 0 ? 1 : 0;
      break;
  }
  ++rephase_kind_;
  ++stats_.rephases;
  rephase_interval_ *= 2;
  next_rephase_at_ = stats_.conflicts + rephase_interval_;
}

Solver::Result Solver::solve(const std::vector<Lit>& assumptions) {
  unsat_core_.clear();
  if (!ok_) return Result::kUnsat;
  for (const Lit a : assumptions) {
    CS_REQUIRE(a.valid() && static_cast<std::size_t>(a.var()) < num_vars(),
               "assumption uses unknown variable");
  }

  if (max_learnts_ == 0)
    max_learnts_ =
        std::max(1000.0, 0.3 * static_cast<double>(clauses_.size()));

  conflicts_at_solve_start_ = stats_.conflicts;
  deadline_seconds_ = 0;
  if (time_limit_ms_ > 0) {
    const auto now = std::chrono::duration<double>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    deadline_seconds_ = now + static_cast<double>(time_limit_ms_) / 1000.0;
  }

  if (trail_.size() > simplified_trail_size_) simplify();
  if (!ok_) return Result::kUnsat;
  retighten_pb_watches();

  // Each solve races a fresh assumption space: restart the LBD window,
  // the best-trail high-water mark, and the rephase schedule.
  recent_count_ = 0;
  recent_pos_ = 0;
  recent_lbd_sum_ = 0;
  best_trail_size_ = 0;
  rephase_interval_ = kRephaseInterval;
  next_rephase_at_ = stats_.conflicts + rephase_interval_;

  Result result = Result::kUnknown;
  for (std::int64_t episode = 1; result == Result::kUnknown; ++episode) {
    // kGlucose decides its own restart points; the episode budget only
    // bounds kLuby (the huge budget never fires before the LBD check).
    const std::int64_t budget =
        restart_mode_ == RestartMode::kGlucose
            ? std::numeric_limits<std::int64_t>::max()
            : luby(episode) * 100;
    result = search(budget, assumptions);
    if (result == Result::kUnknown) {
      if (out_of_budget()) break;
      // Between restarts the solver sits at the root: fold any new
      // root-level facts into the clause database, and shrink the PB
      // watch prefixes the episode's falsification churn inflated.
      if (trail_.size() > simplified_trail_size_) simplify();
      retighten_pb_watches();
      if (rephase_enabled_ && stats_.conflicts >= next_rephase_at_)
        do_rephase();
    }
  }
  cancel_until(0);
  return result;
}

bool Solver::out_of_budget() const {
  if (conflict_limit_ != 0 &&
      stats_.conflicts - conflicts_at_solve_start_ >= conflict_limit_)
    return true;
  if (deadline_seconds_ > 0) {
    const auto now = std::chrono::duration<double>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    if (now >= deadline_seconds_) return true;
  }
  return false;
}

bool Solver::model_value(Var v) const {
  CS_ENSURE(static_cast<std::size_t>(v) < model_.size(),
            "model_value before a SAT result");
  return model_[static_cast<std::size_t>(v)] != 0;
}

bool Solver::pb_bookkeeping_ok() const {
  for (const PbConstraint& pb : pbs_) {
    if (pb_mode_ == PbMode::kCounter) {
      std::int64_t expect = 0;
      for (const PbTerm& t : pb.terms)
        if (value(t.lit) != LBool::kFalse) expect += t.coeff;
      if (expect != pb.max_possible) return false;
    } else {
      if (pb.num_watched > pb.terms.size()) return false;
      std::int64_t expect = 0;
      for (std::size_t i = 0; i < pb.num_watched; ++i)
        if (value(pb.terms[i].lit) != LBool::kFalse)
          expect += pb.terms[i].coeff;
      if (expect != pb.watch_sum) return false;
    }
  }
  return true;
}

std::pair<std::size_t, std::size_t> Solver::pb_watched_terms() const {
  std::size_t watched = 0, total = 0;
  for (const PbConstraint& pb : pbs_) {
    total += pb.terms.size();
    watched +=
        pb_mode_ == PbMode::kWatchedSum ? pb.num_watched : pb.terms.size();
  }
  return {watched, total};
}

Solver::MemoryBreakdown Solver::memory_breakdown() const {
  MemoryBreakdown mb;
  mb.arena_capacity_bytes = ca_.capacity_words() * sizeof(std::uint32_t);
  mb.arena_size_bytes = ca_.size_words() * sizeof(std::uint32_t);
  mb.arena_wasted_bytes = ca_.wasted_words() * sizeof(std::uint32_t);
  for (const auto& ws : watches_)
    mb.watcher_bytes += ws.capacity() * sizeof(Watcher);
  mb.watcher_bytes += watches_.capacity() * sizeof(std::vector<Watcher>);
  for (const auto& bws : bin_watches_)
    mb.binary_watcher_bytes += bws.capacity() * sizeof(BinWatcher);
  mb.binary_watcher_bytes +=
      bin_watches_.capacity() * sizeof(std::vector<BinWatcher>);
  for (const PbConstraint& pb : pbs_)
    mb.pb_bytes += sizeof(PbConstraint) + pb.terms.capacity() * sizeof(PbTerm);
  for (const auto& occs : {std::cref(pb_occs_), std::cref(pb_watch_occs_)}) {
    for (const auto& occ : occs.get())
      mb.pb_occ_bytes +=
          occ.capacity() * sizeof(std::pair<PbConstraint*, std::int64_t>);
    mb.pb_occ_bytes +=
        occs.get().capacity() *
        sizeof(std::vector<std::pair<PbConstraint*, std::int64_t>>);
  }
  mb.var_bytes =
      assigns_.capacity() * sizeof(LBool) + polarity_.capacity() +
      phase_vote_.capacity() * sizeof(std::int64_t) +
      level_.capacity() * sizeof(int) +
      trail_pos_.capacity() * sizeof(std::int32_t) +
      reason_.capacity() * sizeof(Reason) +
      activity_.capacity() * sizeof(double) + seen_.capacity() +
      lbd_seen_.capacity() * sizeof(std::int64_t) +
      trail_.capacity() * sizeof(Lit);
  return mb;
}

std::size_t Solver::memory_estimate_bytes() const {
  return memory_breakdown().total();
}

}  // namespace cs::minisolver
