#include "minisolver/solver.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cmath>
#include <limits>

#include "minisolver/luby.h"
#include "util/error.h"

namespace cs::minisolver {

Solver::Solver() : order_(activity_) {}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(0);
  phase_vote_.push_back(0);
  level_.push_back(0);
  trail_pos_.push_back(-1);
  reason_.push_back(Reason{});
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  pb_occs_.emplace_back();
  pb_occs_.emplace_back();
  order_.insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  CS_ENSURE(decision_level() == 0, "add_clause above level 0");
  if (!ok_) return false;

  // Simplify: sort, dedup, drop false lits, detect tautology/satisfied.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> keep;
  keep.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    CS_REQUIRE(l.valid() && static_cast<std::size_t>(l.var()) < num_vars(),
               "clause uses unknown variable");
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return true;  // tautology
    if (value(l) == LBool::kTrue) return true;                  // satisfied
    if (value(l) == LBool::kFalse) continue;                    // drop
    keep.push_back(l);
  }
  if (keep.empty()) {
    ok_ = false;
    return false;
  }
  if (keep.size() == 1) {
    unchecked_enqueue(keep[0], Reason{});
    ok_ = propagate().is_none();
    return ok_;
  }
  clauses_.push_back(Clause{std::move(keep), 0.0, false, false, false});
  attach_clause(&clauses_.back());
  return true;
}

bool Solver::add_linear_ge(std::vector<PbTerm> terms, std::int64_t bound) {
  CS_ENSURE(decision_level() == 0, "add_linear_ge above level 0");
  if (!ok_) return false;
  for (const PbTerm& t : terms) {
    CS_REQUIRE(t.lit.valid() &&
                   static_cast<std::size_t>(t.lit.var()) < num_vars(),
               "PB constraint uses unknown variable");
  }

  PbConstraint pb = normalize_pb(std::move(terms), bound);
  if (pb.trivially_true()) return true;
  if (pb.trivially_false()) {
    ok_ = false;
    return false;
  }
  // A single-term constraint with a positive bound is just a unit clause.
  if (pb.terms.size() == 1) {
    return add_clause({pb.terms[0].lit});
  }

  pbs_.push_back(std::move(pb));
  PbConstraint* stored = &pbs_.back();
  for (const PbTerm& t : stored->terms) {
    pb_occs_[t.lit.index()].push_back({stored, t.coeff});
    // Seed the initial phase toward satisfying this constraint.
    const auto v = static_cast<std::size_t>(t.lit.var());
    phase_vote_[v] += t.lit.is_neg() ? -t.coeff : t.coeff;
    polarity_[v] = phase_vote_[v] >= 0 ? 1 : 0;
  }

  // Account for level-0 assignments made before this constraint arrived.
  for (const PbTerm& t : stored->terms)
    if (value(t.lit) == LBool::kFalse) stored->max_possible -= t.coeff;

  if (stored->max_possible < stored->bound) {
    ok_ = false;
    return false;
  }
  const std::int64_t slack = stored->max_possible - stored->bound;
  for (const PbTerm& t : stored->terms) {
    if (t.coeff <= slack) break;  // sorted by coefficient, descending
    if (value(t.lit) == LBool::kUndef)
      unchecked_enqueue(t.lit, Reason{nullptr, stored});
  }
  ok_ = propagate().is_none();
  return ok_;
}

bool Solver::add_linear_le(std::vector<PbTerm> terms, std::int64_t bound) {
  for (PbTerm& t : terms) t.coeff = -t.coeff;
  return add_linear_ge(std::move(terms), -bound);
}

void Solver::unchecked_enqueue(Lit p, Reason reason) {
  CS_ENSURE(value(p) == LBool::kUndef, "enqueue of assigned literal");
  const auto v = static_cast<std::size_t>(p.var());
  assigns_[v] = p.is_neg() ? LBool::kFalse : LBool::kTrue;
  polarity_[v] = p.is_neg() ? 0 : 1;
  level_[v] = decision_level();
  trail_pos_[v] = static_cast<std::int32_t>(trail_.size());
  reason_[v] = reason;
  trail_.push_back(p);
  // Counter maintenance: ~p just became false in every PB that contains it.
  for (auto& [pb, coeff] : pb_occs_[(~p).index()]) pb->max_possible -= coeff;
}

void Solver::cancel_until(int target_level) {
  if (decision_level() <= target_level) return;
  const std::int32_t floor =
      trail_lim_[static_cast<std::size_t>(target_level)];
  for (std::int32_t i = static_cast<std::int32_t>(trail_.size()) - 1;
       i >= floor; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(p.var());
    assigns_[v] = LBool::kUndef;
    reason_[v] = Reason{};
    for (auto& [pb, coeff] : pb_occs_[(~p).index()])
      pb->max_possible += coeff;
    order_.insert(p.var());
  }
  trail_.resize(static_cast<std::size_t>(floor));
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  qhead_ = std::min(qhead_, trail_.size());
}

Solver::Reason Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;

    // --- clause propagation: clauses watching ~p (registered under p) ---
    std::vector<Watcher>& ws = watches_[p.index()];
    std::size_t keep = 0;
    std::size_t i = 0;
    Reason conflict{};
    for (; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (w.clause->deleted) continue;  // lazily dropped
      if (value(w.blocker) == LBool::kTrue) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = *w.clause;
      // Normalize so the false watched literal sits at position 1.
      const Lit false_lit = ~p;
      if (c[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      CS_ENSURE(c[1] == false_lit, "watch invariant broken");
      if (value(c[0]) == LBool::kTrue) {
        ws[keep++] = Watcher{&c, c[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c[1]).index()].push_back(Watcher{&c, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = Watcher{&c, c[0]};
      if (value(c[0]) == LBool::kFalse) {
        conflict = Reason{&c, nullptr};
        ++i;
        break;
      }
      unchecked_enqueue(c[0], Reason{&c, nullptr});
    }
    // Compact the remainder after an early conflict exit.
    for (; i < ws.size(); ++i) ws[keep++] = ws[i];
    ws.resize(keep);
    if (!conflict.is_none()) return conflict;

    // --- PB propagation over constraints containing ~p -----------------
    for (auto& [pb, coeff] : pb_occs_[(~p).index()]) {
      (void)coeff;
      if (pb->max_possible < pb->bound) return Reason{nullptr, pb};
      const std::int64_t slack = pb->max_possible - pb->bound;
      if (slack >= pb->max_coeff) continue;
      for (const PbTerm& t : pb->terms) {
        if (t.coeff <= slack) break;  // descending coefficients
        if (value(t.lit) == LBool::kUndef) {
          ++stats_.pb_propagations;
          unchecked_enqueue(t.lit, Reason{nullptr, pb});
        }
      }
    }
  }
  return Reason{};
}

void Solver::reason_literals(const Reason& reason, Lit p,
                             std::vector<Lit>& out) const {
  out.clear();
  if (reason.clause != nullptr) {
    for (const Lit l : reason.clause->lits)
      if (!(p.valid() && l == p)) out.push_back(l);
    return;
  }
  CS_ENSURE(reason.pb != nullptr, "reason_literals on decision");
  const std::int32_t p_pos =
      p.valid() ? trail_pos_[static_cast<std::size_t>(p.var())]
                : std::numeric_limits<std::int32_t>::max();
  for (const PbTerm& t : reason.pb->terms) {
    if (t.lit == p) continue;
    if (value(t.lit) != LBool::kFalse) continue;
    if (trail_pos_[static_cast<std::size_t>(t.lit.var())] < p_pos)
      out.push_back(t.lit);
  }
}

void Solver::bump_var(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.update(v);
}

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (Clause* l : learnts_) l->activity *= 1e-20;
    clause_inc_ *= 1e-20;
  }
}

int Solver::analyze(Reason conflict, std::vector<Lit>& learnt) {
  learnt.clear();
  learnt.push_back(kUndefLit);  // slot for the asserting literal

  int counter = 0;
  Lit p = kUndefLit;
  std::vector<Lit> reason_lits;
  auto index = static_cast<std::int32_t>(trail_.size()) - 1;

  do {
    if (conflict.clause != nullptr && conflict.clause->learnt)
      bump_clause(*conflict.clause);
    reason_literals(conflict, p, reason_lits);
    for (const Lit q : reason_lits) {
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      bump_var(q.var());
      if (level_[v] >= decision_level())
        ++counter;
      else
        learnt.push_back(q);
    }
    // Walk back to the next marked trail literal.
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())])
      --index;
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    conflict = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest of the
  // clause through their (clause or PB) reasons — the local check of
  // Sörensson/Biere. Sound because reason literals always precede the
  // justified literal on the trail, so justifications cannot be circular.
  std::vector<char> in_learnt(num_vars(), 0);
  for (std::size_t i = 1; i < learnt.size(); ++i)
    in_learnt[static_cast<std::size_t>(learnt[i].var())] = 1;
  // seen_ must be cleared for every collected literal — including ones the
  // pruning drops — or stale bits corrupt later conflict analyses.
  const std::vector<Lit> collected(learnt.begin() + 1, learnt.end());
  std::vector<Lit> pruned;
  pruned.push_back(learnt[0]);
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Lit q = learnt[i];
    const Reason& r = reason_[static_cast<std::size_t>(q.var())];
    bool redundant = false;
    if (!r.is_none()) {
      reason_literals(r, ~q, reason_lits);
      redundant = !reason_lits.empty();
      for (const Lit x : reason_lits) {
        const auto xv = static_cast<std::size_t>(x.var());
        if (level_[xv] != 0 && !in_learnt[xv]) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) pruned.push_back(q);
    else in_learnt[static_cast<std::size_t>(q.var())] = 0;
  }
  learnt = std::move(pruned);
  for (const Lit l : collected)
    seen_[static_cast<std::size_t>(l.var())] = 0;

  if (learnt.size() == 1) return 0;
  // Move the literal with the highest level to position 1.
  std::size_t max_i = 1;
  for (std::size_t i = 2; i < learnt.size(); ++i) {
    if (level_[static_cast<std::size_t>(learnt[i].var())] >
        level_[static_cast<std::size_t>(learnt[max_i].var())])
      max_i = i;
  }
  std::swap(learnt[1], learnt[max_i]);
  return level_[static_cast<std::size_t>(learnt[1].var())];
}

void Solver::analyze_final(Lit failed_assumption) {
  unsat_core_.clear();
  unsat_core_.push_back(failed_assumption);
  if (decision_level() == 0) return;

  seen_[static_cast<std::size_t>(failed_assumption.var())] = 1;
  std::vector<Lit> reason_lits;
  for (auto i = static_cast<std::int32_t>(trail_.size()) - 1;
       i >= trail_lim_[0]; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(p.var());
    if (!seen_[v]) continue;
    const Reason& r = reason_[v];
    if (r.is_none()) {
      // A decision inside the assumption prefix is an assumption literal.
      unsat_core_.push_back(p);
    } else {
      reason_literals(r, p, reason_lits);
      for (const Lit q : reason_lits)
        if (level_[static_cast<std::size_t>(q.var())] > 0)
          seen_[static_cast<std::size_t>(q.var())] = 1;
    }
    seen_[v] = 0;
  }
  seen_[static_cast<std::size_t>(failed_assumption.var())] = 0;
}

Lit Solver::pick_branch_lit() {
  while (!order_.empty()) {
    const Var v = order_.pop_max();
    if (value(v) == LBool::kUndef) {
      return polarity_[static_cast<std::size_t>(v)] ? Lit::pos(v)
                                                    : Lit::neg(v);
    }
  }
  return kUndefLit;
}

void Solver::attach_clause(Clause* c) {
  CS_ENSURE(c->size() >= 2, "attach of short clause");
  watches_[(~c->lits[0]).index()].push_back(Watcher{c, c->lits[1]});
  watches_[(~c->lits[1]).index()].push_back(Watcher{c, c->lits[0]});
}

void Solver::detach_clause(Clause* c) {
  // Lazy detach: propagate() skips deleted clauses and drops their
  // watchers during compaction.
  c->deleted = true;
}

void Solver::reduce_db() {
  // Keep binary clauses and locked reasons; drop the least active half of
  // the rest.
  const auto locked = [&](const Clause* c) {
    const Var v = c->lits[0].var();
    return value(c->lits[0]) == LBool::kTrue &&
           reason_[static_cast<std::size_t>(v)].clause == c;
  };
  std::vector<Clause*> candidates;
  candidates.reserve(learnts_.size());
  for (Clause* c : learnts_)
    if (!c->deleted && c->size() > 2 && !locked(c)) candidates.push_back(c);
  std::sort(candidates.begin(), candidates.end(),
            [](const Clause* a, const Clause* b) {
              return a->activity < b->activity;
            });
  const std::size_t to_delete = candidates.size() / 2;
  for (std::size_t i = 0; i < to_delete; ++i) {
    detach_clause(candidates[i]);
    ++stats_.deleted_clauses;
  }
  std::erase_if(learnts_, [](const Clause* c) { return c->deleted; });
}

Solver::Result Solver::search(std::int64_t conflict_budget,
                              const std::vector<Lit>& assumptions) {
  std::int64_t conflicts_here = 0;
  std::vector<Lit> learnt;

  while (true) {
    const Reason conflict = propagate();
    if (!conflict.is_none()) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (progress_every_ > 0 && stats_.conflicts >= next_progress_at_) {
        next_progress_at_ = stats_.conflicts + progress_every_;
        progress_(stats_);
      }
      if (decision_level() == 0) {
        ok_ = false;
        unsat_core_.clear();
        return Result::kUnsat;
      }
      const int bt_level = analyze(conflict, learnt);
      if (learnt_hook_) learnt_hook_(learnt);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], Reason{});
      } else {
        clauses_.push_back(Clause{learnt, 0.0, true, false, false});
        Clause* c = &clauses_.back();
        learnts_.push_back(c);
        ++stats_.learned_clauses;
        bump_clause(*c);
        attach_clause(c);
        unchecked_enqueue(learnt[0], Reason{c, nullptr});
      }
      decay_var_activity();
      decay_clause_activity();
      continue;
    }

    if (conflicts_here >= conflict_budget) {
      ++stats_.restarts;
      cancel_until(0);
      return Result::kUnknown;  // restart
    }
    if (out_of_budget()) {
      cancel_until(0);
      return Result::kUnknown;
    }
    if (static_cast<double>(learnts_.size()) > max_learnts_) {
      reduce_db();
      max_learnts_ *= 1.5;
    }

    // Extend with assumptions first, then heuristics.
    Lit next = kUndefLit;
    while (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a =
          assumptions[static_cast<std::size_t>(decision_level())];
      if (value(a) == LBool::kTrue) {
        new_decision_level();  // dummy level keeps the indexing aligned
      } else if (value(a) == LBool::kFalse) {
        analyze_final(a);
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (!next.valid()) {
      next = pick_branch_lit();
      if (!next.valid()) {
        // Full assignment: record the model.
        model_.assign(num_vars(), 0);
        for (std::size_t v = 0; v < num_vars(); ++v)
          model_[v] = (assigns_[v] == LBool::kTrue) ? 1 : 0;
        return Result::kSat;
      }
      ++stats_.decisions;
    }
    new_decision_level();
    unchecked_enqueue(next, Reason{});
  }
}

Solver::Result Solver::solve(const std::vector<Lit>& assumptions) {
  unsat_core_.clear();
  if (!ok_) return Result::kUnsat;
  for (const Lit a : assumptions) {
    CS_REQUIRE(a.valid() && static_cast<std::size_t>(a.var()) < num_vars(),
               "assumption uses unknown variable");
  }

  if (max_learnts_ == 0)
    max_learnts_ =
        std::max(1000.0, 0.3 * static_cast<double>(clauses_.size()));

  conflicts_at_solve_start_ = stats_.conflicts;
  deadline_seconds_ = 0;
  if (time_limit_ms_ > 0) {
    const auto now = std::chrono::duration<double>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    deadline_seconds_ = now + static_cast<double>(time_limit_ms_) / 1000.0;
  }

  Result result = Result::kUnknown;
  for (std::int64_t episode = 1; result == Result::kUnknown; ++episode) {
    result = search(luby(episode) * 100, assumptions);
    if (result == Result::kUnknown && out_of_budget()) break;
  }
  cancel_until(0);
  return result;
}

bool Solver::out_of_budget() const {
  if (conflict_limit_ != 0 &&
      stats_.conflicts - conflicts_at_solve_start_ >= conflict_limit_)
    return true;
  if (deadline_seconds_ > 0) {
    const auto now = std::chrono::duration<double>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    if (now >= deadline_seconds_) return true;
  }
  return false;
}

bool Solver::model_value(Var v) const {
  CS_ENSURE(static_cast<std::size_t>(v) < model_.size(),
            "model_value before a SAT result");
  return model_[static_cast<std::size_t>(v)] != 0;
}

std::size_t Solver::memory_estimate_bytes() const {
  std::size_t bytes = 0;
  bytes += assigns_.size() * (sizeof(LBool) + sizeof(char) + sizeof(int) +
                              sizeof(std::int32_t) + sizeof(Reason) +
                              sizeof(double));
  for (const Clause& c : clauses_)
    bytes += sizeof(Clause) + c.size() * sizeof(Lit);
  for (const PbConstraint& pb : pbs_)
    bytes += sizeof(PbConstraint) + pb.terms.size() * sizeof(PbTerm);
  for (const auto& ws : watches_) bytes += ws.size() * sizeof(Watcher);
  for (const auto& occ : pb_occs_)
    bytes += occ.size() * sizeof(std::pair<PbConstraint*, std::int64_t>);
  return bytes;
}

}  // namespace cs::minisolver
