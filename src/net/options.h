// The shared service/solver flag surface of every front-end binary.
//
// configsynth_cli, configsynth_server, tradeoff_explorer and bench_load
// all accept the same core flags, parsed by one helper so the spellings,
// defaults and validation can never drift between binaries:
//
//   --backend z3|minipb      solver backend
//   --jobs <N>               worker threads (0 = one per hardware thread)
//   --queue-limit <N>        admission-control queue depth
//   --cache-capacity <N>     LRU result-cache entries
//   --time-limit <ms>        per-check wall-clock cap
//   --conflict-limit <n>     per-check deterministic effort cap
//   --shard                  sharded synthesis, automatic region count
//   --shard-regions <N>      sharded synthesis with N regions (N >= 2)
//   --metrics-csv <file>     dump the metrics registry as CSV
//   --metrics-prom <file>    dump the metrics in Prometheus text format
//   --trace-out <file>       record a Chrome-trace-event JSON timeline
//
// Binaries call `consume_common_flag` per argv position and handle their
// own extras (positional arguments, --listen, --port, ...) when it
// declines; `common_flags_help()` is the usage text for the block above.
#pragma once

#include <string>
#include <string_view>

#include "service/synth_service.h"
#include "synth/synthesizer.h"

namespace cs::net {

struct CommonOptions {
  /// Backend, per-check caps, threshold mode.
  synth::SynthesisOptions synthesis;
  /// Workers (--jobs), queue limit, cache capacity.
  service::ServiceConfig service;
  std::string metrics_csv;
  std::string metrics_prom;
  std::string trace_path;
};

/// Consumes argv[i] (and its value, advancing `i`) when it is one of the
/// common flags above; returns false — leaving `i` untouched — when the
/// flag belongs to the caller. Throws util::SpecError on a common flag
/// with a missing or malformed value.
bool consume_common_flag(CommonOptions& options, int argc, char** argv,
                         int& i);

/// Usage text for the common flag block (one flag per line, indented).
std::string_view common_flags_help();

}  // namespace cs::net
