// cs-req-v1 — the versioned wire protocol of the synthesis service.
//
// One request or response per line, UTF-8, '\n'-terminated ('\r' before
// the terminator is tolerated and stripped). The same codec parses the
// server's request *files* and its TCP connections, byte for byte, so
// the two front-ends can never drift; docs/PROTOCOL.md is the normative
// grammar. Summary:
//
//   line     := blank | comment | hello | command | request
//   comment  := '#' ...                      (ignored)
//   hello    := "cs-req-v1"                  (version announcement)
//   command  := "metrics"                    (request-file snapshot marker)
//   request  := spec-ref SP objective SP isolation SP usability SP budget
//               (SP option)*
//   spec-ref := "inline:" base64 | "delta:" ops | "file:" path | path
//   option   := "id=" token | "deadline=" milliseconds
//
// Responses echo the request id so keep-alive clients can pipeline:
//
//   response := "cs-resp-v1" SP "id=" token SP "status=" status (SP field)*
//   status   := sat | unsat | unknown | rejected | skipped | ok | error
//   fields   := reject= | source= | bound= | core= | probes= | ms= | msg=
//
// `msg=`, when present, is always the last field and swallows the rest
// of the line (error text may contain spaces). Unknown protocol versions
// ("cs-req-v2", ...) parse to a structured error, never to a skipped
// line — a misdialed client always gets an answer it can read.
//
// Parsing throws util::SpecError with context on malformed input; the
// server layers catch it and answer with a kError response.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/synth_service.h"
#include "synth/sweep.h"

namespace cs::net {

/// How a request names its ProblemSpec.
enum class SpecRefKind {
  kFile,    ///< path resolved against the server's spec root / file dir
  kInline,  ///< base64 of a Table IV input file, self-contained
  kDelta,   ///< cs-delta-v1 ops applied to the channel's previous spec
};

/// One parsed request line.
struct WireRequest {
  /// Client-chosen request id echoed in the response; empty = none given
  /// (servers assign a per-connection sequence number).
  std::string id;
  synth::SweepPoint point;
  SpecRefKind spec_kind = SpecRefKind::kFile;
  /// kFile: the path as written (not yet resolved). kInline: the decoded
  /// Table IV text. kDelta: the cs-delta-v1 ops text as written (space-
  /// free by the delta grammar, so it is a single token on the wire);
  /// the server resolves it against the spec the same channel (TCP
  /// connection / request file) last solved with — docs/DELTAS.md.
  std::string spec;
  /// Wall-clock budget from admission in ms (0 = none).
  std::int64_t deadline_ms = 0;

  bool operator==(const WireRequest&) const = default;
};

/// Everything one line can be.
enum class LineKind {
  kBlank,    ///< empty or comment — no response
  kHello,    ///< "cs-req-v1" version announcement
  kMetrics,  ///< "metrics" snapshot command (request files only)
  kRequest,
};

struct ParsedLine {
  LineKind kind = LineKind::kBlank;
  WireRequest request;  // meaningful for kRequest only
};

/// Response status vocabulary (superset of smt::CheckResult: the service
/// can also turn a request away or fail to parse it).
enum class WireStatus {
  kSat,
  kUnsat,
  kUnknown,
  kRejected,  ///< admission control said no (see reject)
  kSkipped,   ///< deadline expired / cancelled before solving
  kOk,        ///< hello acknowledgements
  kError,     ///< malformed line or internal failure (see msg)
};

std::string_view wire_status_name(WireStatus status);

/// One parsed or to-be-rendered response line.
struct WireResponse {
  std::string id;
  WireStatus status = WireStatus::kError;
  service::RejectReason reject = service::RejectReason::kNone;
  /// "solved", "cache" or "coalesced" for answered requests; empty
  /// otherwise.
  std::string source;
  /// Converged bound / achieved isolation rendering ("-" convention of
  /// the server table is spelled as absence here).
  std::string bound;
  /// UNSAT threshold core, empty unless status=unsat with a core.
  std::vector<synth::ThresholdKind> core;
  std::int64_t probes = 0;
  /// Enqueue → completion, milliseconds (one decimal on the wire).
  double total_ms = 0;
  bool has_ms = false;
  /// Error / diagnostic text; rendered last, may contain spaces.
  std::string message;

  bool operator==(const WireResponse&) const = default;
};

/// The cs-req-v1 codec. Stateless; all members are pure functions.
class RequestCodec {
 public:
  /// Protocol version string — the hello line, and the prefix of every
  /// response line.
  static constexpr std::string_view kVersion = "cs-req-v1";
  static constexpr std::string_view kResponseTag = "cs-resp-v1";

  /// Parses one request-side line (file or socket). Throws
  /// util::SpecError on malformed input — including unsupported
  /// "cs-req-vN" versions, so callers can answer with a structured
  /// error instead of dropping the line.
  static ParsedLine parse_line(std::string_view line);

  /// Renders a request in canonical form (round-trips through
  /// parse_line: parse(render(r)).request == r).
  static std::string render_request(const WireRequest& request);

  /// Renders a response line (no trailing newline).
  static std::string render_response(const WireResponse& response);

  /// Parses a response line (clients, tests). Throws util::SpecError on
  /// malformed input.
  static WireResponse parse_response(std::string_view line);

  /// Builds the response for a finished service request.
  static WireResponse response_from_outcome(
      std::string id, const synth::SweepPoint& point,
      const service::ServiceOutcome& outcome);

  /// Builds the error response for a line that failed to parse/execute.
  static WireResponse error_response(std::string id, std::string message);

  /// Standard base64 (RFC 4648, '=' padding) — how inline specs travel.
  static std::string base64_encode(std::string_view bytes);
  /// Throws util::SpecError on non-base64 input.
  static std::string base64_decode(std::string_view text);
};

}  // namespace cs::net
