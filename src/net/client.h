// A small blocking TCP client for cs-req-v1 endpoints.
//
// Used by the loopback integration tests and the bench_load generator;
// deliberately synchronous — one connection per thread, lines in, lines
// out — so client code reads like the protocol transcript it produces.
#pragma once

#include <optional>
#include <string>

namespace cs::net {

class BlockingClient {
 public:
  /// Connects (throws util::Error on failure).
  BlockingClient(const std::string& host, int port);
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;

  /// Sends `line` plus the terminating '\n'.
  void send_line(const std::string& line);
  /// Sends raw bytes (HTTP requests).
  void send_raw(const std::string& bytes);

  /// Blocks for the next '\n'-terminated line ('\r' stripped);
  /// std::nullopt on orderly EOF.
  std::optional<std::string> recv_line();
  /// Reads until EOF (HTTP responses with Connection: close).
  std::string recv_all();

  /// Half-closes the write side (the server sees EOF, finishes
  /// in-flight work, responds, then closes).
  void shutdown_write();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace cs::net
