#include "net/options.h"

#include "smt/ir.h"
#include "util/error.h"
#include "util/strings.h"

namespace cs::net {

namespace {

const char* const kHelp =
    "  --backend z3|minipb|race  solver backend (default z3); race runs\n"
    "                         a deterministic MiniPB/Z3 portfolio\n"
    "  --jobs <N>             worker threads; 0 = one per hardware thread\n"
    "  --queue-limit <N>      max queued requests before rejection\n"
    "  --cache-capacity <N>   result-cache entries\n"
    "  --warm-pool <N>        parked warm synthesizers (0 disables warm\n"
    "                         reuse: every request solves cold, so output\n"
    "                         is identical at any --jobs value)\n"
    "  --time-limit <ms>      per-check wall-clock cap (0 = none)\n"
    "  --conflict-limit <n>   per-check deterministic effort cap (0 = "
    "none)\n"
    "  --shard                sharded synthesis, automatic region count\n"
    "  --shard-regions <N>    sharded synthesis with N regions (N >= 2)\n"
    "  --metrics-csv <file>   dump metrics as CSV on exit\n"
    "  --metrics-prom <file>  dump metrics in Prometheus text format\n"
    "  --trace-out <file>     record a Chrome-trace-event JSON timeline\n";

}  // namespace

bool consume_common_flag(CommonOptions& options, int argc, char** argv,
                         int& i) {
  const std::string_view flag = argv[i];
  const auto next = [&]() -> std::string {
    CS_REQUIRE(i + 1 < argc,
               "missing value for " + std::string(flag));
    return argv[++i];
  };
  const auto next_count = [&](std::string_view name) {
    const std::int64_t v = util::parse_int(next(), name);
    CS_REQUIRE(v >= 0, std::string(flag) + " must be >= 0");
    return v;
  };

  if (flag == "--backend") {
    options.synthesis.backend = smt::backend_from_name(next());
  } else if (flag == "--jobs") {
    options.service.workers = static_cast<int>(next_count("jobs"));
  } else if (flag == "--queue-limit") {
    options.service.queue_limit =
        static_cast<std::size_t>(next_count("queue limit"));
  } else if (flag == "--cache-capacity") {
    options.service.cache_capacity =
        static_cast<std::size_t>(next_count("cache capacity"));
  } else if (flag == "--warm-pool") {
    options.service.warm_pool_limit =
        static_cast<std::size_t>(next_count("warm pool"));
  } else if (flag == "--time-limit") {
    options.synthesis.check_time_limit_ms = next_count("time limit");
  } else if (flag == "--conflict-limit") {
    options.synthesis.check_conflict_limit = next_count("conflict limit");
  } else if (flag == "--shard") {
    if (options.service.shard_regions == 0)
      options.service.shard_regions = -1;  // automatic region count
  } else if (flag == "--shard-regions") {
    const std::int64_t v = next_count("shard regions");
    CS_REQUIRE(v >= 2, "--shard-regions must be >= 2");
    options.service.shard_regions = static_cast<int>(v);
  } else if (flag == "--metrics-csv") {
    options.metrics_csv = next();
  } else if (flag == "--metrics-prom") {
    options.metrics_prom = next();
  } else if (flag == "--trace-out") {
    options.trace_path = next();
  } else {
    return false;
  }
  return true;
}

std::string_view common_flags_help() { return kHelp; }

}  // namespace cs::net
