// A minimal single-threaded epoll reactor.
//
// One `EventLoop` owns one epoll instance and runs on exactly one thread
// (the thread that calls `run()`). Everything registered with the loop —
// listener sockets, connections, timer/eventfd wakeups — is dispatched
// on that thread, so connection state never needs a lock. The only two
// thread-safe entry points are `post()` (queue a task for the loop
// thread, used by service workers to hand completed solves back) and
// `stop()`; both wake the loop through an eventfd, which is also
// async-signal-safe, so signal handlers may call `wake()` directly.
//
// Lifetime rules: `add_fd`/`set_events`/`remove_fd` must be called on
// the loop thread (or before `run()` starts). The loop never closes a
// registered fd — the handler's owner does, after `remove_fd`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cs::net {

class EventLoop {
 public:
  /// Called with the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using IoHandler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events`; `handler` runs on the loop thread.
  void add_fd(int fd, std::uint32_t events, IoHandler handler);
  /// Changes the interest mask of a registered fd.
  void set_events(int fd, std::uint32_t events);
  /// Deregisters; the handler is dropped (pending events are ignored).
  void remove_fd(int fd);

  /// Queues `task` to run on the loop thread; wakes the loop.
  /// Thread-safe. Tasks queued after the loop stopped run never.
  void post(std::function<void()> task);

  /// Runs until `stop()`; dispatches events and posted tasks.
  void run();

  /// Requests `run()` to return after the current iteration. Thread-safe.
  void stop();

  /// Writes one tick to the wake eventfd. Async-signal-safe.
  void wake();

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

 private:
  void drain_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  // shared_ptr so a handler that removes itself (or another fd) while
  // being dispatched never frees the std::function it is running inside.
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;
};

}  // namespace cs::net
