// The cs-req-v1 TCP front-end of the synthesis service.
//
// `TcpServer` binds one listening socket on an epoll `EventLoop` and
// speaks the line-delimited cs-req-v1 protocol (net/request_codec.h,
// docs/PROTOCOL.md) over keep-alive connections. Every parsed request is
// submitted to the embedded service::SynthService, so the TCP path gets
// the result cache, single-flight coalescing, warm synthesizer pool and
// admission control for free; responses are handed back to the loop
// thread via EventLoop::post and written in completion order, paired to
// requests by id.
//
// Backpressure is bounded at every stage — the server never buffers
// without limit:
//   * per-connection pipeline: at most `max_pipeline` requests in
//     flight; beyond it the connection's read interest is dropped until
//     responses drain (TCP flow control pushes back on the client);
//   * service queue: submissions past ServiceConfig::queue_limit get a
//     deterministic `status=rejected reject=queue-full` response;
//   * buffers: a connection whose input or output buffer exceeds
//     `max_buffer_bytes` is answered with an error and closed.
//
// The same port also answers plain HTTP/1.1 (sniffed from the first
// bytes): `GET /metrics` serves the MetricsRegistry in Prometheus text
// exposition format, `GET /healthz` serves a liveness probe. HTTP
// connections close after one response.
//
// Graceful drain: `shutdown()` (thread-safe, also reachable from a
// signal handler through `drain_on` + an eventfd) stops accepting,
// cancels queued requests cooperatively (in-flight solves finish and
// their responses are delivered), flushes every connection and then
// stops the loop — `run()` returns only when the drain completes.
//
// Threading: the loop thread owns all connection state; SynthService
// workers own the solves; the only crossings are SynthService::submit
// (loop → workers) and EventLoop::post (workers → loop).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/event_loop.h"
#include "net/request_codec.h"
#include "service/synth_service.h"

namespace cs::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 = ephemeral (read the chosen one back via `port()`).
  int port = 0;
  /// Base directory for `file:` spec references; requests must stay
  /// inside it (no absolute paths, no "..").
  std::string spec_root = ".";
  /// Per-connection in-flight request cap (read interest is dropped at
  /// the cap — TCP backpressure, not buffering).
  std::size_t max_pipeline = 128;
  /// Per-connection input/output buffer cap; beyond it the connection
  /// is answered with an error and closed.
  std::size_t max_buffer_bytes = 1 << 20;
  /// Simultaneous connections; excess accepts are answered with an
  /// error line and closed immediately.
  std::size_t max_connections = 1024;
  /// Distinct parsed specs kept for `file:`/`inline:` reuse.
  std::size_t spec_cache_limit = 64;
  service::ServiceConfig service;
  /// Solver options applied to every wire request (the wire carries
  /// objective/thresholds/deadline; backend and caps are server policy).
  synth::SynthesisOptions synthesis;
};

class TcpServer {
 public:
  /// Binds and listens (throws util::Error on failure); the loop is not
  /// running yet.
  explicit TcpServer(ServerConfig config);

  /// Drains (as per shutdown) and joins if `start()` was used.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }

  /// Runs the loop on the calling thread until a drain completes.
  void run();

  /// Runs the loop on a background thread (tests, embedded use).
  void start();

  /// Requests a graceful drain; thread-safe, idempotent. `run()`
  /// returns (and a `start()` thread exits) once every in-flight solve
  /// has answered and every connection is flushed and closed.
  void shutdown();

  /// Registers an eventfd whose readability triggers a drain. Write to
  /// it from a SIGINT/SIGTERM handler (write(2) is async-signal-safe).
  /// Must be called before run()/start().
  void drain_on(int event_fd);

  service::SynthService& synth_service() { return service_; }
  service::MetricsRegistry& metrics() { return service_.metrics(); }

 private:
  struct Connection;

  void on_accept();
  void on_io(const std::shared_ptr<Connection>& conn, std::uint32_t events);
  void process_input(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   std::string_view line);
  void handle_http(const std::shared_ptr<Connection>& conn);
  void submit_request(const std::shared_ptr<Connection>& conn,
                      const WireRequest& request);
  void complete_request(const std::weak_ptr<Connection>& weak,
                        WireResponse response);
  /// Resolves the request's spec-ref. `delta:` refs apply cs-delta-v1
  /// ops to `conn`'s last successfully resolved spec (error when the
  /// connection has none yet); every successful resolution of any kind
  /// updates that anchor, so delta chains compose left to right in
  /// line order even while earlier requests are still solving.
  std::shared_ptr<const model::ProblemSpec> resolve_spec(
      Connection& conn, const WireRequest& request);
  void send_line(const std::shared_ptr<Connection>& conn,
                 const std::string& line);
  void send_response(const std::shared_ptr<Connection>& conn,
                     const WireResponse& response);
  void flush_out(const std::shared_ptr<Connection>& conn);
  void update_interest(const std::shared_ptr<Connection>& conn);
  void maybe_close(const std::shared_ptr<Connection>& conn);
  void close_conn(const std::shared_ptr<Connection>& conn);
  void begin_drain();
  void maybe_finish_drain();

  ServerConfig config_;
  EventLoop loop_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool draining_ = false;  // loop thread only
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  std::unordered_map<std::string,
                     std::shared_ptr<const model::ProblemSpec>>
      spec_cache_;  // loop thread only
  std::thread thread_;
  /// Declared last: destroyed first, so worker completions can still
  /// post to the (older, still-alive) loop while the service drains.
  service::SynthService service_;
};

}  // namespace cs::net
