#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace cs::net {

BlockingClient::BlockingClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  CS_ENSURE(fd_ >= 0, std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  CS_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "invalid host address '" + host + "'");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw util::SpecError("cannot connect to " + host + ":" +
                          std::to_string(port) + ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

void BlockingClient::send_line(const std::string& line) {
  send_raw(line + "\n");
}

void BlockingClient::send_raw(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::SpecError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> BlockingClient::recv_line() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CS_REQUIRE(n == 0, std::string("recv: ") + std::strerror(errno));
    if (buf_.empty()) return std::nullopt;  // clean EOF
    std::string line;
    line.swap(buf_);  // final unterminated line
    return line;
  }
}

std::string BlockingClient::recv_all() {
  std::string out;
  out.swap(buf_);
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CS_REQUIRE(n == 0, std::string("recv: ") + std::strerror(errno));
    return out;
  }
}

void BlockingClient::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace cs::net
