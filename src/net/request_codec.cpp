#include "net/request_codec.h"

#include <array>
#include <cstdio>

#include "util/error.h"
#include "util/strings.h"

namespace cs::net {

namespace {

constexpr std::string_view kBase64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

synth::SweepObjective objective_from_name(std::string_view name) {
  for (const synth::SweepObjective o :
       {synth::SweepObjective::kFeasibility,
        synth::SweepObjective::kMaxIsolation,
        synth::SweepObjective::kMinCost}) {
    if (name == synth::sweep_objective_name(o)) return o;
  }
  throw util::SpecError("unknown objective '" + std::string(name) +
                        "' (want feasibility|max-isolation|min-cost)");
}

synth::ThresholdKind threshold_from_name(std::string_view name) {
  for (const synth::ThresholdKind k :
       {synth::ThresholdKind::kIsolation, synth::ThresholdKind::kUsability,
        synth::ThresholdKind::kCost}) {
    if (name == synth::threshold_name(k)) return k;
  }
  throw util::SpecError("unknown threshold kind '" + std::string(name) + "'");
}

WireStatus status_from_name(std::string_view name) {
  for (const WireStatus s :
       {WireStatus::kSat, WireStatus::kUnsat, WireStatus::kUnknown,
        WireStatus::kRejected, WireStatus::kSkipped, WireStatus::kOk,
        WireStatus::kError}) {
    if (name == wire_status_name(s)) return s;
  }
  throw util::SpecError("unknown response status '" + std::string(name) +
                        "'");
}

service::RejectReason reject_from_name(std::string_view name) {
  for (const service::RejectReason r :
       {service::RejectReason::kQueueFull,
        service::RejectReason::kDeadlineExpired,
        service::RejectReason::kCancelled}) {
    if (name == service::reject_reason_name(r)) return r;
  }
  throw util::SpecError("unknown reject reason '" + std::string(name) + "'");
}

/// Splits "key=value" at the first '='; throws when there is none.
std::pair<std::string_view, std::string_view> split_option(
    std::string_view token) {
  const std::size_t eq = token.find('=');
  CS_REQUIRE(eq != std::string_view::npos,
             "malformed option '" + std::string(token) +
                 "' (want key=value)");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace

std::string_view wire_status_name(WireStatus status) {
  switch (status) {
    case WireStatus::kSat:
      return "sat";
    case WireStatus::kUnsat:
      return "unsat";
    case WireStatus::kUnknown:
      return "unknown";
    case WireStatus::kRejected:
      return "rejected";
    case WireStatus::kSkipped:
      return "skipped";
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kError:
      return "error";
  }
  return "error";
}

ParsedLine RequestCodec::parse_line(std::string_view line) {
  ParsedLine parsed;
  std::string text = util::trim(line);
  if (text.empty() || text[0] == '#') return parsed;  // kBlank
  if (text == kVersion) {
    parsed.kind = LineKind::kHello;
    return parsed;
  }
  CS_REQUIRE(!util::starts_with(text, "cs-req-v"),
             "unsupported protocol version '" + text + "' (this server "
             "speaks " + std::string(kVersion) + ")");
  CS_REQUIRE(!util::starts_with(text, "cs-resp-"),
             "response line on the request channel");
  if (text == "metrics") {
    parsed.kind = LineKind::kMetrics;
    return parsed;
  }

  const std::vector<std::string> tok = util::split_ws(text);
  CS_REQUIRE(tok.size() >= 5,
             "request needs '<spec-ref> <objective> <isolation> <usability> "
             "<budget> [id=...] [deadline=...]', got " +
                 std::to_string(tok.size()) + " token(s)");
  parsed.kind = LineKind::kRequest;
  WireRequest& req = parsed.request;

  const std::string& ref = tok[0];
  if (util::starts_with(ref, "inline:")) {
    req.spec_kind = SpecRefKind::kInline;
    req.spec = base64_decode(std::string_view(ref).substr(7));
  } else if (util::starts_with(ref, "delta:")) {
    // Deltas are space-free by grammar (cs-delta-v1 names reject ' '),
    // so the ops text is exactly the rest of this token. Validity of
    // the ops is the resolver's concern: it has the base spec.
    req.spec_kind = SpecRefKind::kDelta;
    req.spec = ref.substr(6);
    CS_REQUIRE(!req.spec.empty(), "empty delta spec-ref");
  } else {
    req.spec_kind = SpecRefKind::kFile;
    req.spec = util::starts_with(ref, "file:") ? ref.substr(5) : ref;
    CS_REQUIRE(!req.spec.empty(), "empty spec path");
  }

  req.point.objective = objective_from_name(tok[1]);
  req.point.isolation =
      util::Fixed::from_double(util::parse_double(tok[2], "isolation"));
  req.point.usability =
      util::Fixed::from_double(util::parse_double(tok[3], "usability"));
  req.point.budget =
      util::Fixed::from_double(util::parse_double(tok[4], "budget"));

  for (std::size_t i = 5; i < tok.size(); ++i) {
    const auto [key, value] = split_option(tok[i]);
    if (key == "id") {
      CS_REQUIRE(!value.empty(), "empty request id");
      req.id = std::string(value);
    } else if (key == "deadline") {
      req.deadline_ms = util::parse_int(value, "deadline");
    } else {
      throw util::SpecError("unknown request option '" + std::string(key) +
                            "' (want id|deadline)");
    }
  }
  return parsed;
}

std::string RequestCodec::render_request(const WireRequest& request) {
  std::string out;
  if (request.spec_kind == SpecRefKind::kInline) {
    out += "inline:";
    out += base64_encode(request.spec);
  } else if (request.spec_kind == SpecRefKind::kDelta) {
    out += "delta:" + request.spec;
  } else if (request.spec.find(':') != std::string::npos) {
    out += "file:" + request.spec;
  } else {
    out += request.spec;
  }
  out += ' ';
  out += synth::sweep_objective_name(request.point.objective);
  out += ' ' + request.point.isolation.to_string();
  out += ' ' + request.point.usability.to_string();
  out += ' ' + request.point.budget.to_string();
  if (!request.id.empty()) out += " id=" + request.id;
  if (request.deadline_ms != 0)
    out += " deadline=" + std::to_string(request.deadline_ms);
  return out;
}

std::string RequestCodec::render_response(const WireResponse& response) {
  std::string out(kResponseTag);
  out += " id=" + (response.id.empty() ? std::string("-") : response.id);
  out += " status=";
  out += wire_status_name(response.status);
  if (response.reject != service::RejectReason::kNone) {
    out += " reject=";
    out += service::reject_reason_name(response.reject);
  }
  if (!response.source.empty()) out += " source=" + response.source;
  if (!response.bound.empty()) out += " bound=" + response.bound;
  if (!response.core.empty()) {
    out += " core=";
    for (std::size_t i = 0; i < response.core.size(); ++i) {
      if (i > 0) out += '+';
      out += synth::threshold_name(response.core[i]);
    }
  }
  if (response.status == WireStatus::kSat ||
      response.status == WireStatus::kUnsat ||
      response.status == WireStatus::kUnknown) {
    out += " probes=" + std::to_string(response.probes);
  }
  if (response.has_ms) out += " ms=" + fmt_ms(response.total_ms);
  // msg is rendered last: it swallows the rest of the line on parse.
  if (!response.message.empty()) out += " msg=" + response.message;
  return out;
}

WireResponse RequestCodec::parse_response(std::string_view line) {
  const std::string text = util::trim(line);
  // msg= takes the rest of the line, so split it off before tokenizing.
  std::string_view head = text;
  WireResponse resp;
  const std::size_t msg_at = text.find(" msg=");
  if (msg_at != std::string::npos) {
    resp.message = text.substr(msg_at + 5);
    head = std::string_view(text).substr(0, msg_at);
  }
  const std::vector<std::string> tok = util::split_ws(head);
  CS_REQUIRE(!tok.empty() && tok[0] == kResponseTag,
             "not a " + std::string(kResponseTag) + " line: '" + text + "'");
  bool saw_status = false;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    const auto [key, value] = split_option(tok[i]);
    if (key == "id") {
      resp.id = value == "-" ? std::string() : std::string(value);
    } else if (key == "status") {
      resp.status = status_from_name(value);
      saw_status = true;
    } else if (key == "reject") {
      resp.reject = reject_from_name(value);
    } else if (key == "source") {
      resp.source = std::string(value);
    } else if (key == "bound") {
      resp.bound = std::string(value);
    } else if (key == "core") {
      for (const std::string& part : util::split(value, '+'))
        resp.core.push_back(threshold_from_name(part));
    } else if (key == "probes") {
      resp.probes = util::parse_int(value, "probes");
    } else if (key == "ms") {
      resp.total_ms = util::parse_double(value, "ms");
      resp.has_ms = true;
    } else {
      throw util::SpecError("unknown response field '" + std::string(key) +
                            "'");
    }
  }
  CS_REQUIRE(saw_status, "response line has no status field");
  return resp;
}

WireResponse RequestCodec::response_from_outcome(
    std::string id, const synth::SweepPoint& point,
    const service::ServiceOutcome& outcome) {
  WireResponse resp;
  resp.id = std::move(id);
  resp.reject = outcome.reject_reason;
  resp.total_ms = outcome.total_ms;
  resp.has_ms = true;
  if (outcome.rejected) {
    resp.status = WireStatus::kRejected;
    return resp;
  }
  if (outcome.result.skipped) {
    resp.status = WireStatus::kSkipped;
    return resp;
  }
  switch (outcome.result.status) {
    case smt::CheckResult::kSat:
      resp.status = WireStatus::kSat;
      break;
    case smt::CheckResult::kUnsat:
      resp.status = WireStatus::kUnsat;
      break;
    case smt::CheckResult::kUnknown:
      resp.status = WireStatus::kUnknown;
      break;
  }
  resp.source = outcome.cache_hit
                    ? (outcome.coalesced ? "coalesced" : "cache")
                    : "solved";
  if (outcome.result.search.feasible) {
    resp.bound = point.objective == synth::SweepObjective::kFeasibility
                     ? outcome.result.search.metrics.isolation.to_string()
                     : outcome.result.search.bound.to_string();
  } else if (outcome.result.status == smt::CheckResult::kUnsat) {
    resp.core = outcome.result.conflicting;
  }
  resp.probes = outcome.result.search.probes;
  return resp;
}

WireResponse RequestCodec::error_response(std::string id,
                                          std::string message) {
  WireResponse resp;
  resp.id = std::move(id);
  resp.status = WireStatus::kError;
  resp.message = std::move(message);
  return resp;
}

std::string RequestCodec::base64_encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint8_t>(bytes[i]) << 16) |
                            (static_cast<std::uint8_t>(bytes[i + 1]) << 8) |
                            static_cast<std::uint8_t>(bytes[i + 2]);
    out += kBase64Alphabet[(n >> 18) & 63];
    out += kBase64Alphabet[(n >> 12) & 63];
    out += kBase64Alphabet[(n >> 6) & 63];
    out += kBase64Alphabet[n & 63];
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint8_t>(bytes[i]) << 16;
    out += kBase64Alphabet[(n >> 18) & 63];
    out += kBase64Alphabet[(n >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<std::uint8_t>(bytes[i]) << 16) |
                            (static_cast<std::uint8_t>(bytes[i + 1]) << 8);
    out += kBase64Alphabet[(n >> 18) & 63];
    out += kBase64Alphabet[(n >> 12) & 63];
    out += kBase64Alphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

std::string RequestCodec::base64_decode(std::string_view text) {
  std::array<std::int8_t, 256> lut;
  lut.fill(-1);
  for (std::size_t i = 0; i < kBase64Alphabet.size(); ++i)
    lut[static_cast<std::uint8_t>(kBase64Alphabet[i])] =
        static_cast<std::int8_t>(i);
  CS_REQUIRE(text.size() % 4 == 0,
             "base64 payload length must be a multiple of 4");
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    std::uint32_t n = 0;
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        CS_REQUIRE(i + 4 == text.size() && j >= 2,
                   "stray '=' inside base64 payload");
        ++pad;
        n <<= 6;
        continue;
      }
      CS_REQUIRE(pad == 0, "base64 data after padding");
      const std::int8_t v = lut[static_cast<std::uint8_t>(c)];
      CS_REQUIRE(v >= 0, std::string("invalid base64 character '") + c + "'");
      n = (n << 6) | static_cast<std::uint32_t>(v);
    }
    out += static_cast<char>((n >> 16) & 0xff);
    if (pad < 2) out += static_cast<char>((n >> 8) & 0xff);
    if (pad < 1) out += static_cast<char>(n & 0xff);
  }
  return out;
}

}  // namespace cs::net
