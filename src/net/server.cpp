#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "model/delta.h"
#include "model/input_file.h"
#include "util/error.h"
#include "util/strings.h"

namespace cs::net {

namespace {

/// Rejects `file:` references that could escape the spec root.
void require_confined(const std::string& path) {
  CS_REQUIRE(!path.empty() && path[0] != '/',
             "absolute spec paths are not served (paths resolve under the "
             "server's --spec-root)");
  for (const std::string& part : util::split(path, '/'))
    CS_REQUIRE(part != "..", "spec path may not contain '..'");
}

std::string exception_text(std::exception_ptr error) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

/// Per-connection state; owned by the loop thread. Completions hold a
/// weak_ptr, so a connection that dies mid-solve simply drops its late
/// responses.
struct TcpServer::Connection {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  /// Requests submitted to the service whose responses have not been
  /// delivered to this connection yet.
  std::size_t inflight = 0;
  /// Auto-assigned ids for requests that carry none.
  std::uint64_t next_auto_id = 1;
  bool http = false;
  bool mode_known = false;
  /// Peer half-closed: finish in-flight work, flush, then close.
  bool eof = false;
  /// Stop reading; close once in-flight work answered and outbuf empty.
  bool close_after_flush = false;
  /// Interest mask currently registered with epoll.
  std::uint32_t events = 0;
  /// Base spec for `delta:` spec-refs — the spec of the most recent
  /// request on this connection whose spec-ref resolved successfully
  /// (including a delta's own result, so deltas chain). Resolution
  /// happens on the loop thread in line order, so the anchor is
  /// deterministic even with pipelined requests still in flight.
  std::shared_ptr<const model::ProblemSpec> last_spec;
};

TcpServer::TcpServer(ServerConfig config)
    : config_(std::move(config)), service_(config_.service) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  CS_ENSURE(listen_fd_ >= 0, std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  CS_REQUIRE(::inet_pton(AF_INET, config_.bind_address.c_str(),
                         &addr.sin_addr) == 1,
             "invalid bind address '" + config_.bind_address + "'");
  CS_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
             "cannot bind " + config_.bind_address + ":" +
                 std::to_string(config_.port) + ": " + std::strerror(errno));
  CS_ENSURE(::listen(listen_fd_, 128) == 0,
            std::string("listen: ") + std::strerror(errno));

  socklen_t len = sizeof(addr);
  CS_ENSURE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0,
            std::string("getsockname: ") + std::strerror(errno));
  port_ = ntohs(addr.sin_port);

  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_accept(); });
}

TcpServer::~TcpServer() {
  shutdown();
  if (thread_.joinable()) thread_.join();
  // Defensive: close anything an abnormal exit left open.
  for (auto& [fd, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpServer::run() { loop_.run(); }

void TcpServer::start() {
  thread_ = std::thread([this] { run(); });
}

void TcpServer::shutdown() {
  loop_.post([this] { begin_drain(); });
}

void TcpServer::drain_on(int event_fd) {
  loop_.add_fd(event_fd, EPOLLIN, [this, event_fd](std::uint32_t) {
    std::uint64_t ticks = 0;
    while (::read(event_fd, &ticks, sizeof(ticks)) == sizeof(ticks)) {
    }
    begin_drain();
  });
}

void TcpServer::on_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    metrics().counter("net_connections_total").inc();
    if (conns_.size() >= config_.max_connections) {
      // Bounded accept: answer and close instead of queueing forever.
      const std::string line =
          RequestCodec::render_response(RequestCodec::error_response(
              "-", "server at connection limit; retry later")) +
          "\n";
      [[maybe_unused]] const ssize_t n =
          ::write(fd, line.data(), line.size());
      ::close(fd);
      metrics().counter("net_connections_refused").inc();
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->events = EPOLLIN;
    conns_[fd] = conn;
    loop_.add_fd(fd, EPOLLIN, [this, conn](std::uint32_t events) {
      on_io(conn, events);
    });
  }
}

void TcpServer::on_io(const std::shared_ptr<Connection>& conn,
                      std::uint32_t events) {
  if (conn->fd < 0) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(conn);
    return;
  }
  if (events & EPOLLOUT) flush_out(conn);
  if (conn->fd < 0) return;
  if (events & EPOLLIN) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<std::size_t>(n));
        if (conn->inbuf.size() > config_.max_buffer_bytes) {
          metrics().counter("net_protocol_errors").inc();
          send_response(conn, RequestCodec::error_response(
                                  "-", "input buffer limit exceeded"));
          conn->close_after_flush = true;
          break;
        }
        continue;
      }
      if (n == 0) {
        conn->eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(conn);  // ECONNRESET and friends
      return;
    }
    process_input(conn);
  }
  if (conn->fd >= 0) {
    update_interest(conn);
    maybe_close(conn);
  }
}

void TcpServer::process_input(const std::shared_ptr<Connection>& conn) {
  if (!conn->mode_known &&
      (conn->inbuf.size() >= 4 || (conn->eof && !conn->inbuf.empty()))) {
    conn->mode_known = true;
    conn->http = util::starts_with(conn->inbuf, "GET ") ||
                 util::starts_with(conn->inbuf, "HEAD") ||
                 util::starts_with(conn->inbuf, "POST");
  }
  if (conn->http) {
    // Wait for the end of the request head, then answer and close.
    if (conn->inbuf.find("\r\n\r\n") != std::string::npos ||
        conn->inbuf.find("\n\n") != std::string::npos || conn->eof)
      handle_http(conn);
    return;
  }
  while (!conn->close_after_flush && !draining_ &&
         conn->inflight < config_.max_pipeline) {
    const std::size_t nl = conn->inbuf.find('\n');
    std::string line;
    if (nl != std::string::npos) {
      line = conn->inbuf.substr(0, nl);
      conn->inbuf.erase(0, nl + 1);
    } else if (conn->eof && !conn->inbuf.empty()) {
      line.swap(conn->inbuf);  // be liberal: a final unterminated line
    } else {
      break;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    handle_line(conn, line);
    if (conn->fd < 0) return;
  }
}

void TcpServer::handle_line(const std::shared_ptr<Connection>& conn,
                            std::string_view line) {
  ParsedLine parsed;
  try {
    parsed = RequestCodec::parse_line(line);
  } catch (const util::Error& e) {
    metrics().counter("net_protocol_errors").inc();
    send_response(conn, RequestCodec::error_response("-", e.what()));
    return;
  }
  switch (parsed.kind) {
    case LineKind::kBlank:
      return;
    case LineKind::kHello: {
      WireResponse ack;
      ack.status = WireStatus::kOk;
      ack.message = std::string(RequestCodec::kVersion);
      send_response(conn, ack);
      return;
    }
    case LineKind::kMetrics:
      send_response(conn,
                    RequestCodec::error_response(
                        "-", "the metrics command is request-file only; "
                             "use HTTP GET /metrics on this port"));
      return;
    case LineKind::kRequest:
      submit_request(conn, parsed.request);
      return;
  }
}

void TcpServer::handle_http(const std::shared_ptr<Connection>& conn) {
  metrics().counter("net_http_requests").inc();
  // Request line only; headers are irrelevant to both endpoints.
  const std::size_t eol = conn->inbuf.find('\n');
  std::string request_line =
      eol == std::string::npos ? conn->inbuf : conn->inbuf.substr(0, eol);
  if (!request_line.empty() && request_line.back() == '\r')
    request_line.pop_back();
  conn->inbuf.clear();

  const std::vector<std::string> parts = util::split_ws(request_line);
  const std::string method = parts.empty() ? "" : parts[0];
  const std::string target = parts.size() < 2 ? "" : parts[1];

  std::string status;
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  if (method != "GET" && method != "HEAD") {
    status = "405 Method Not Allowed";
    body = "only GET is served here\n";
  } else if (target == "/metrics") {
    status = "200 OK";
    body = service_.metrics().render_prometheus();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (target == "/healthz") {
    status = "200 OK";
    body = draining_ ? "draining\n" : "ok\n";
  } else {
    status = "404 Not Found";
    body = "try GET /metrics or GET /healthz\n";
  }

  std::string head = "HTTP/1.1 " + status +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  conn->outbuf += head;
  if (method != "HEAD") conn->outbuf += body;
  conn->close_after_flush = true;
  flush_out(conn);
  if (conn->fd >= 0) maybe_close(conn);
}

void TcpServer::submit_request(const std::shared_ptr<Connection>& conn,
                               const WireRequest& request) {
  const std::string id = request.id.empty()
                             ? std::to_string(conn->next_auto_id++)
                             : request.id;
  std::shared_ptr<const model::ProblemSpec> spec;
  try {
    spec = resolve_spec(*conn, request);
  } catch (const util::Error& e) {
    metrics().counter("net_spec_errors").inc();
    send_response(conn, RequestCodec::error_response(id, e.what()));
    return;
  }
  metrics().counter("net_requests_total").inc();

  service::ServiceRequest sreq;
  sreq.spec = std::move(spec);
  sreq.point = request.point;
  sreq.synthesis = config_.synthesis;
  sreq.deadline_ms = request.deadline_ms;

  ++conn->inflight;
  const std::weak_ptr<Connection> weak = conn;
  const synth::SweepPoint point = request.point;
  service_.submit(
      std::move(sreq),
      [this, weak, id, point](service::ServiceOutcome outcome,
                              std::exception_ptr error) {
        // Worker thread: render here (pure), deliver on the loop thread.
        WireResponse resp =
            error ? RequestCodec::error_response(
                        id, exception_text(std::move(error)))
                  : RequestCodec::response_from_outcome(id, point, outcome);
        loop_.post([this, weak, resp = std::move(resp)]() mutable {
          complete_request(weak, std::move(resp));
        });
      });
}

void TcpServer::complete_request(const std::weak_ptr<Connection>& weak,
                                 WireResponse response) {
  const std::shared_ptr<Connection> conn = weak.lock();
  if (!conn || conn->fd < 0) return;  // connection died mid-solve
  --conn->inflight;
  send_response(conn, response);
  if (conn->fd < 0) return;
  // Dropping below the pipeline cap may unblock buffered lines.
  process_input(conn);
  if (conn->fd < 0) return;
  update_interest(conn);
  maybe_close(conn);
}

std::shared_ptr<const model::ProblemSpec> TcpServer::resolve_spec(
    Connection& conn, const WireRequest& request) {
  if (request.spec_kind == SpecRefKind::kDelta) {
    // Applied fresh every time: the base varies per connection, and
    // model::apply_delta is cheap next to any solve. The service's
    // content-keyed caches still coalesce identical outcomes.
    CS_REQUIRE(conn.last_spec != nullptr,
               "delta: spec-ref needs a previous spec on this connection "
               "(send a file:/inline: request first)");
    auto spec = std::make_shared<const model::ProblemSpec>(model::apply_delta(
        *conn.last_spec, model::parse_delta(request.spec)));
    conn.last_spec = spec;
    return spec;
  }
  const bool is_inline = request.spec_kind == SpecRefKind::kInline;
  const std::string key =
      (is_inline ? std::string("inline\n") : std::string("file\n")) +
      request.spec;
  if (const auto it = spec_cache_.find(key); it != spec_cache_.end()) {
    conn.last_spec = it->second;
    return it->second;
  }

  std::shared_ptr<const model::ProblemSpec> spec;
  if (is_inline) {
    std::istringstream in(request.spec);
    spec = std::make_shared<const model::ProblemSpec>(model::parse_input(in));
  } else {
    require_confined(request.spec);
    spec = std::make_shared<const model::ProblemSpec>(
        model::parse_input_file(config_.spec_root + "/" + request.spec));
  }
  if (spec_cache_.size() >= config_.spec_cache_limit) spec_cache_.clear();
  spec_cache_.emplace(key, spec);
  conn.last_spec = spec;
  return spec;
}

void TcpServer::send_response(const std::shared_ptr<Connection>& conn,
                              const WireResponse& response) {
  metrics().counter("net_responses_total").inc();
  send_line(conn, RequestCodec::render_response(response));
}

void TcpServer::send_line(const std::shared_ptr<Connection>& conn,
                          const std::string& line) {
  if (conn->fd < 0) return;
  conn->outbuf += line;
  conn->outbuf += '\n';
  flush_out(conn);
  if (conn->fd >= 0 && conn->outbuf.size() > config_.max_buffer_bytes) {
    // Slow reader: shedding beats unbounded buffering.
    metrics().counter("net_slow_reader_closes").inc();
    close_conn(conn);
  }
}

void TcpServer::flush_out(const std::shared_ptr<Connection>& conn) {
  while (!conn->outbuf.empty()) {
    const ssize_t n =
        ::write(conn->fd, conn->outbuf.data(), conn->outbuf.size());
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn);  // EPIPE and friends
    return;
  }
  update_interest(conn);
}

void TcpServer::update_interest(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  const bool want_read = !conn->eof && !conn->close_after_flush &&
                         !draining_ &&
                         conn->inflight < config_.max_pipeline;
  const std::uint32_t events = (want_read ? EPOLLIN : 0u) |
                               (conn->outbuf.empty() ? 0u : EPOLLOUT);
  if (events != conn->events) {
    loop_.set_events(conn->fd, events);
    conn->events = events;
  }
}

void TcpServer::maybe_close(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  const bool done_reading = conn->eof || conn->close_after_flush ||
                            draining_;
  if (done_reading && conn->inflight == 0 && conn->outbuf.empty())
    close_conn(conn);
}

void TcpServer::close_conn(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  loop_.remove_fd(conn->fd);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  conn->fd = -1;
  metrics().counter("net_connections_closed").inc();
  maybe_finish_drain();
}

void TcpServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Queued-but-not-started requests resolve as skipped/cancelled; their
  // responses still flow back through the normal completion path.
  service_.cancel_pending();
  const std::vector<std::shared_ptr<Connection>> conns = [&] {
    std::vector<std::shared_ptr<Connection>> v;
    v.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) v.push_back(conn);
    return v;
  }();
  for (const auto& conn : conns) {
    update_interest(conn);
    maybe_close(conn);
  }
  maybe_finish_drain();
}

void TcpServer::maybe_finish_drain() {
  if (draining_ && conns_.empty() && listen_fd_ < 0) loop_.stop();
}

}  // namespace cs::net
