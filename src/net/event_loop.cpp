#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace cs::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  CS_ENSURE(epoll_fd_ >= 0,
            std::string("epoll_create1: ") + std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  CS_ENSURE(wake_fd_ >= 0, std::string("eventfd: ") + std::strerror(errno));
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t ticks = 0;
    // Drain the counter; posted tasks run from the run() loop body.
    while (::read(wake_fd_, &ticks, sizeof(ticks)) == sizeof(ticks)) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, IoHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  CS_ENSURE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
            std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
}

void EventLoop::set_events(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  CS_ENSURE(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
            std::string("epoll_ctl(MOD): ") + std::strerror(errno));
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the result is unused.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::run() {
  std::array<epoll_event, 64> events;
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::InternalError(std::string("epoll_wait: ") +
                                std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      // Look the handler up per event: an earlier handler in this batch
      // may have removed this fd (connection close), in which case the
      // event is stale and must be dropped.
      const auto it = handlers_.find(events[static_cast<std::size_t>(i)]
                                         .data.fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<IoHandler> handler = it->second;
      (*handler)(events[static_cast<std::size_t>(i)].events);
    }
    drain_posted();
  }
  // Run tasks that raced with stop() so completions are never silently
  // dropped while the owner is still alive.
  drain_posted();
}

}  // namespace cs::net
